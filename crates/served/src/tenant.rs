//! Tenants: bounded submission queues with admission control.
//!
//! Each tenant owns a FIFO of admitted-but-not-yet-dispatched jobs. The
//! queue is bounded; submissions beyond the bound are rejected with a
//! reason (backpressure) instead of queuing unboundedly. Draining order
//! across tenants is weighted round-robin (see
//! [`Served::dispatch_round`](crate::service::Served::dispatch_round)).

use crate::spec::{JobSpec, SpecError};
use hwsim::sync::Mutex;
use hwsim::SimTime;
use multicl::telemetry::TraceContext;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Static description of one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant name (used in telemetry events and metric names).
    pub name: String,
    /// Weighted-round-robin share: up to `weight` jobs drained per sweep.
    pub weight: u32,
    /// Maximum admitted-but-undispatched jobs; submissions beyond this are
    /// rejected.
    pub capacity: usize,
}

impl TenantConfig {
    /// A tenant with the given name, drain weight (≥1), and queue bound (≥1).
    pub fn new(name: impl Into<String>, weight: u32, capacity: usize) -> TenantConfig {
        TenantConfig { name: name.into(), weight: weight.max(1), capacity: capacity.max(1) }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The tenant's bounded queue is at capacity (backpressure).
    QueueFull {
        /// Depth observed at rejection time.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The job spec failed validation.
    InvalidSpec(SpecError),
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, capacity } => {
                write!(f, "queue_full depth={depth}/{capacity}")
            }
            RejectReason::InvalidSpec(e) => write!(f, "invalid_spec: {e}"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// One admitted job waiting for dispatch.
#[derive(Debug, Clone)]
pub(crate) struct PendingJob {
    /// Service-wide job id.
    pub id: u64,
    /// The validated spec.
    pub spec: JobSpec,
    /// Virtual time of admission.
    pub submitted_at: SimTime,
    /// Virtual completion deadline; past it the job fails instead of
    /// (re)dispatching.
    pub deadline: Option<SimTime>,
    /// Dispatches that already ended in a device failure.
    pub attempts: u32,
    /// Earliest virtual time the job may be (re)dispatched — retry backoff.
    pub not_before: SimTime,
    /// Causal span store minted at admission; every dispatch attempt adds
    /// its critical-path segment decomposition here.
    pub trace: TraceContext,
}

/// Runtime state of one tenant.
pub(crate) struct TenantState {
    pub config: TenantConfig,
    pub queue: Mutex<VecDeque<PendingJob>>,
    /// Rounds in which this tenant had backlog but received no dispatch
    /// slot — the fairness/starvation signal.
    pub starvation_rounds: AtomicU64,
}

impl TenantState {
    pub fn new(config: TenantConfig) -> TenantState {
        TenantState {
            config,
            queue: Mutex::new(VecDeque::new()),
            starvation_rounds: AtomicU64::new(0),
        }
    }

    pub fn depth(&self) -> usize {
        self.queue.lock().len()
    }

    pub fn note_starved(&self) {
        self.starvation_rounds.fetch_add(1, Ordering::Relaxed);
    }

    pub fn starvation_rounds(&self) -> u64 {
        self.starvation_rounds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_floors_weight_and_capacity() {
        let t = TenantConfig::new("t", 0, 0);
        assert_eq!(t.weight, 1);
        assert_eq!(t.capacity, 1);
    }

    #[test]
    fn reject_reasons_render() {
        let r = RejectReason::QueueFull { depth: 4, capacity: 4 };
        assert_eq!(r.to_string(), "queue_full depth=4/4");
        let r = RejectReason::InvalidSpec(SpecError::Duplicate("x".into()));
        assert!(r.to_string().contains("invalid_spec"));
        assert!(r.to_string().contains('x'));
    }
}

//! `served`: a multi-tenant job service on top of the MultiCL scheduler.
//!
//! The scheduler reproduction (`multicl`) answers "given these command
//! queues, which devices should run them?". This crate asks the question
//! one layer up, where the paper's task-parallel workloads actually come
//! from in production: many independent clients submitting small jobs
//! against one shared node. It provides:
//!
//! - [`spec`] — declarative job specs: a DAG of buffer writes and kernel
//!   launches with roofline cost descriptions, encoded as JSON.
//! - [`tenant`] — per-tenant bounded queues and admission control
//!   (reject-with-reason backpressure instead of unbounded buffering).
//! - [`service`] — the [`Served`](service::Served) front-end: weighted
//!   round-robin dispatch rounds onto a pool of scheduler queues, one
//!   MultiCL sync epoch per round, job-lifecycle telemetry events.
//! - [`metrics`] — per-tenant throughput/queue-depth/latency metrics in
//!   the shared registry (tenant identity as an escaped Prometheus label),
//!   plus exact p50/p95/p99 latency samples.
//! - [`slo`] — per-tenant latency SLOs with multi-window burn-rate
//!   alerting; transitions surface as `SloBurn` telemetry events.
//! - [`loadgen`] — seeded open-loop (Poisson) and closed-loop arrival
//!   processes in virtual time; same seed, same results, plus a JSONL
//!   trace format for replay.
//! - [`cluster`] — the multi-node tier: one [`Served`](service::Served)
//!   shard per fleet node, consistent-hash tenant routing
//!   ([`cluster::HashRing`]), and cross-shard rebalancing that migrates
//!   tenants off degraded shards over the simulated interconnect.
//!
//! Binaries: `loadgen` (generate load, write `results/serve_*.{json,prom}`
//! reports) and `serve_replay` (re-run a recorded trace).

#![warn(missing_docs)]

pub mod cluster;
pub mod loadgen;
pub mod metrics;
pub mod service;
pub mod slo;
pub mod spec;
pub mod tenant;

pub use cluster::{ClusterService, ClusterServiceConfig, HashRing, Migration};
pub use loadgen::{ArrivalMode, LoadgenConfig};
pub use service::{
    FailReason, JobOutcome, JobResult, RetryPolicy, ServePolicy, Served, ServiceConfig,
};
pub use slo::{BurnWindow, SloConfig};
pub use spec::{JobSpec, SpecError};
pub use tenant::{RejectReason, TenantConfig};

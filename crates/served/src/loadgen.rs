//! Deterministic load generation against a [`Served`] instance.
//!
//! Two arrival processes, both driven entirely in virtual time from a
//! seeded [`XorShift`] stream, so the same seed reproduces the same
//! submissions, rejections, schedules, and latencies bit-for-bit:
//!
//! - **Open loop**: Poisson arrivals at an aggregate `rate_hz`, assigned
//!   uniformly to tenants. Arrivals do not wait for completions — offered
//!   load beyond capacity builds backlog and eventually trips admission
//!   control (the interesting regime for the capacity experiment).
//! - **Closed loop**: each tenant keeps a fixed number of jobs in flight;
//!   a completion schedules the next submission after a think time. Offered
//!   load self-limits, probing sustained throughput.
//!
//! Arrivals can be serialized to a JSONL trace and replayed later
//! ([`trace_lines`] / [`parse_trace`]), which is what the `serve_replay`
//! binary does.

use crate::service::{warmed_options, RetryPolicy, ServePolicy, Served, ServiceConfig};
use crate::slo::SloConfig;
use crate::spec::JobSpec;
use crate::tenant::TenantConfig;
use clrt::error::ClResult;
use clrt::{Platform, RuntimeConfig};
use hwsim::json::Json;
use hwsim::xrand::XorShift;
use hwsim::{SimDuration, SimTime};
use std::path::Path;

/// How submissions are timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Poisson arrivals at a fixed offered rate, independent of completions.
    Open,
    /// Fixed jobs-in-flight per tenant; completions trigger resubmission.
    Closed,
}

impl ArrivalMode {
    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<ArrivalMode> {
        match s.to_ascii_lowercase().as_str() {
            "open" => Some(ArrivalMode::Open),
            "closed" => Some(ArrivalMode::Closed),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalMode::Open => "open",
            ArrivalMode::Closed => "closed",
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Number of tenants.
    pub tenants: usize,
    /// Backend scheduling policy.
    pub policy: ServePolicy,
    /// Total jobs to submit.
    pub jobs: usize,
    /// Open-loop aggregate arrival rate in virtual jobs/second.
    pub rate_hz: f64,
    /// Arrival process.
    pub mode: ArrivalMode,
    /// Closed-loop think time between a completion and the next submission.
    pub think: SimDuration,
    /// Closed-loop jobs in flight per tenant.
    pub concurrency: usize,
    /// Per-tenant admission-queue bound.
    pub queue_capacity: usize,
    /// Worker queue pool size.
    pub workers: usize,
    /// Runtime knobs for the backing platform: data-plane worker threads
    /// (wall-clock throughput only — virtual time and results are identical
    /// for any count), event retirement, and trace capacity for
    /// bounded-memory long runs.
    pub runtime: RuntimeConfig,
    /// Latency SLO applied to every tenant (`None` disables burn-rate
    /// tracking and `SloBurn` events).
    pub slo: Option<SloConfig>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            seed: 42,
            tenants: 4,
            policy: ServePolicy::AutoFit,
            jobs: 48,
            rate_hz: 400.0,
            mode: ArrivalMode::Open,
            think: SimDuration::from_millis(2),
            concurrency: 2,
            queue_capacity: 8,
            workers: 4,
            runtime: RuntimeConfig::default(),
            slo: Some(SloConfig::default()),
        }
    }
}

/// One timed submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival time.
    pub at: SimTime,
    /// Target tenant index.
    pub tenant: usize,
    /// The job to submit.
    pub spec: JobSpec,
}

/// The fixed job-template pool. Template names double as kernel names, so
/// the scheduler's per-epoch kernel-profile cache warms quickly and stays
/// hot across jobs — exactly how a service reuses a small program library.
///
/// The mix is deliberately heterogeneous: a CPU-friendly kernel
/// (uncoalesced, divergent, scalar), a GPU-friendly one (coalesced
/// compute), and a two-stage chain — the device-affinity spread that gives
/// `AUTO_FIT` something to exploit.
pub fn templates() -> Vec<JobSpec> {
    let parse = |text: &str| JobSpec::parse_str(text).expect("template parses");
    vec![
        parse(
            r#"{
              "name": "svc_cpu",
              "buffers": [{"name": "a", "elements": 2048}],
              "kernels": [{"name": "svc_cpu_scan", "flops_per_item": 8.0,
                           "bytes_per_item": 48.0, "coalescing": 0.1,
                           "branch_divergence": 0.9, "vector_friendliness": 0.3}],
              "steps": [
                {"id": "in", "op": "write", "buffer": "a"},
                {"op": "launch", "kernel": "svc_cpu_scan", "global": 32768,
                 "local": 64, "args": ["a"], "after": ["in"]}
              ]
            }"#,
        ),
        parse(
            r#"{
              "name": "svc_gpu",
              "buffers": [{"name": "x", "elements": 2048}],
              "kernels": [{"name": "svc_gpu_map", "flops_per_item": 1280.0,
                           "bytes_per_item": 8.0, "vector_friendliness": 0.15}],
              "steps": [
                {"id": "in", "op": "write", "buffer": "x"},
                {"op": "launch", "kernel": "svc_gpu_map", "global": 32768,
                 "local": 128, "args": ["x"], "after": ["in"]}
              ]
            }"#,
        ),
        parse(
            r#"{
              "name": "svc_mixed",
              "buffers": [{"name": "u", "elements": 2048}, {"name": "v", "elements": 2048}],
              "kernels": [
                {"name": "svc_mixed_gather", "flops_per_item": 8.0,
                 "bytes_per_item": 64.0, "coalescing": 0.15,
                 "branch_divergence": 0.7, "vector_friendliness": 0.3},
                {"name": "svc_mixed_fma", "flops_per_item": 960.0, "bytes_per_item": 8.0,
                 "vector_friendliness": 0.15}
              ],
              "steps": [
                {"id": "in_u", "op": "write", "buffer": "u"},
                {"id": "in_v", "op": "write", "buffer": "v"},
                {"id": "g", "op": "launch", "kernel": "svc_mixed_gather", "global": 16384,
                 "local": 64, "args": ["u", "v"], "after": ["in_u", "in_v"]},
                {"op": "launch", "kernel": "svc_mixed_fma", "global": 16384,
                 "local": 128, "args": ["v"], "after": ["g"]}
              ]
            }"#,
        ),
    ]
}

/// Generate the open-loop Poisson arrival schedule: exponential
/// inter-arrival gaps at `rate_hz`, uniform tenant and template choice.
/// Sorted by time by construction.
pub fn open_arrivals(cfg: &LoadgenConfig) -> Vec<Arrival> {
    let mut rng = XorShift::new(cfg.seed);
    let pool = templates();
    let mut at = SimTime::ZERO;
    (0..cfg.jobs)
        .map(|_| {
            at += SimDuration::from_secs_f64(rng.exp_f64(cfg.rate_hz.max(1e-9)));
            Arrival {
                at,
                tenant: rng.index(cfg.tenants.max(1)),
                spec: pool[rng.index(pool.len())].clone(),
            }
        })
        .collect()
}

/// Serialize arrivals as a JSONL trace (one object per line).
pub fn trace_lines(arrivals: &[Arrival]) -> String {
    let mut out = String::new();
    for a in arrivals {
        let line = Json::obj([
            ("at_ns", Json::from(a.at.as_nanos())),
            ("tenant", Json::from(a.tenant)),
            ("spec", a.spec.to_json()),
        ]);
        out.push_str(&line.dump());
        out.push('\n');
    }
    out
}

/// Parse a JSONL trace produced by [`trace_lines`]. Returns `None` if any
/// line is malformed.
pub fn parse_trace(text: &str) -> Option<Vec<Arrival>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let v = Json::parse(l)?;
            Some(Arrival {
                at: SimTime::from_nanos(v.get("at_ns")?.as_u64()?),
                tenant: v.get("tenant")?.as_u64()? as usize,
                spec: JobSpec::from_json(v.get("spec")?).ok()?,
            })
        })
        .collect()
}

/// Drive a pre-computed (time-sorted) arrival schedule through `served`:
/// admit everything due, dispatch while there is backlog, and jump the
/// virtual clock to the next arrival when idle. Drains fully at the end.
/// Arrival times are relative to the clock at entry, so the same schedule
/// replays identically regardless of start-up cost already on the clock.
pub fn drive_open(served: &Served, arrivals: &[Arrival]) {
    let base = served.now();
    let mut next = 0;
    while next < arrivals.len() {
        while next < arrivals.len()
            && base + arrivals[next].at.saturating_since(SimTime::ZERO) <= served.now()
        {
            let a = &arrivals[next];
            let _ = served.submit(a.tenant, a.spec.clone());
            next += 1;
        }
        if served.backlog() > 0 {
            if served.dispatch_round() == 0 {
                // The whole backlog sits inside retry backoff windows: jump
                // to whichever comes first, the next arrival or the earliest
                // retry, so the loop always makes progress.
                let mut target = served.next_ready_at();
                if next < arrivals.len() {
                    let arrival = base + arrivals[next].at.saturating_since(SimTime::ZERO);
                    target = Some(target.map_or(arrival, |t| t.min(arrival)));
                }
                if let Some(t) = target {
                    served.advance_to(t);
                }
            }
        } else if next < arrivals.len() {
            served.advance_to(base + arrivals[next].at.saturating_since(SimTime::ZERO));
        }
    }
    served.run_until_drained();
}

/// Drive a closed loop: each tenant keeps `concurrency` jobs in flight;
/// every completion schedules the next submission `think` later, until
/// `jobs` total submissions. Template choice is seeded per submission.
pub fn drive_closed(served: &Served, cfg: &LoadgenConfig) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut rng = XorShift::new(cfg.seed);
    let pool = templates();
    // (when, sequence, tenant): the sequence number makes ordering total and
    // deterministic even for identical timestamps.
    let mut pending: BinaryHeap<Reverse<(SimTime, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for t in 0..cfg.tenants {
        for _ in 0..cfg.concurrency.max(1) {
            pending.push(Reverse((SimTime::ZERO, seq, t)));
            seq += 1;
        }
    }
    let mut submitted = 0usize;
    let mut seen_outcomes = 0usize;
    while submitted < cfg.jobs {
        // Submit everything due now; if nothing is due, jump to the next.
        let mut any_due = false;
        while let Some(&Reverse((at, _, _))) = pending.peek() {
            if at > served.now() {
                break;
            }
            let Reverse((_, _, tenant)) = pending.pop().expect("peeked");
            let _ = served.submit(tenant, pool[rng.index(pool.len())].clone());
            submitted += 1;
            any_due = true;
            if submitted >= cfg.jobs {
                break;
            }
        }
        if !any_due {
            if let Some(&Reverse((at, _, _))) = pending.peek() {
                served.advance_to(at);
                continue;
            }
            break; // nothing pending and nothing due: loop is exhausted
        }
        served.dispatch_round();
        let outcomes = served.outcomes();
        for o in &outcomes[seen_outcomes..] {
            pending.push(Reverse((o.completed_at + cfg.think, seq, o.tenant)));
            seq += 1;
        }
        seen_outcomes = outcomes.len();
    }
    served.run_until_drained();
}

/// Build the service for `cfg` with a warmed profile cache at `cache_dir`
/// (see [`warmed_options`] — this is what makes runs reproducible) and the
/// given telemetry observers attached to the context.
pub fn build_service(
    cfg: &LoadgenConfig,
    cache_dir: &Path,
    observers: Vec<std::sync::Arc<dyn multicl::SchedObserver>>,
) -> ClResult<Served> {
    let platform = Platform::paper_node_with(cfg.runtime.clone());
    let tenants = (0..cfg.tenants.max(1))
        .map(|i| TenantConfig::new(format!("t{i}"), 1, cfg.queue_capacity))
        .collect();
    let mut options = warmed_options(&platform, cache_dir);
    options.observers = observers;
    Served::new(
        &platform,
        ServiceConfig {
            policy: cfg.policy,
            workers: cfg.workers,
            tenants,
            options,
            retry: RetryPolicy::default(),
            slo: cfg.slo.clone(),
        },
    )
}

/// [`run_with`] without telemetry observers.
pub fn run(cfg: &LoadgenConfig, cache_dir: &Path) -> ClResult<(Served, Vec<Arrival>)> {
    run_with(cfg, cache_dir, Vec::new())
}

/// Run the configured load against a fresh service and return
/// `(service, arrivals)` — the arrivals are empty for closed-loop runs
/// (there is no precomputed schedule to trace).
pub fn run_with(
    cfg: &LoadgenConfig,
    cache_dir: &Path,
    observers: Vec<std::sync::Arc<dyn multicl::SchedObserver>>,
) -> ClResult<(Served, Vec<Arrival>)> {
    let served = build_service(cfg, cache_dir, observers)?;
    served.warm_programs(&templates())?;
    let arrivals = match cfg.mode {
        ArrivalMode::Open => {
            let arrivals = open_arrivals(cfg);
            drive_open(&served, &arrivals);
            arrivals
        }
        ArrivalMode::Closed => {
            drive_closed(&served, cfg);
            Vec::new()
        }
    };
    Ok((served, arrivals))
}

/// Summarize a finished run as a JSON report: totals plus per-tenant
/// throughput, rejection counts, and p50/p95/p99 latency. Fully
/// deterministic for a given seed — wall-clock figures are added
/// separately by [`report_json_with_wall`].
pub fn report_json(served: &Served, cfg: &LoadgenConfig) -> Json {
    let elapsed = served.now().saturating_since(served.serving_since());
    let elapsed_s = elapsed.as_secs_f64().max(1e-12);
    let mut total_submitted = 0u64;
    let mut total_completed = 0u64;
    let mut total_rejected = 0u64;
    let mut total_failed = 0u64;
    let mut total_retried = 0u64;
    let mut per_tenant = Vec::new();
    for i in 0..served.tenant_count() {
        let m = served.metrics().tenant(i);
        let (p50, p95, p99) = served.metrics().latency_percentiles_ms(i);
        let samples = served.metrics().latencies_ms(i);
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        total_submitted += m.submitted.get();
        total_completed += m.completed.get();
        total_rejected += m.rejected.get();
        total_failed += m.failed.get();
        total_retried += m.retried.get();
        per_tenant.push(Json::obj([
            ("name", Json::from(served.tenant_name(i))),
            ("submitted", Json::from(m.submitted.get())),
            ("admitted", Json::from(m.admitted.get())),
            ("rejected", Json::from(m.rejected.get())),
            ("completed", Json::from(m.completed.get())),
            ("failed", Json::from(m.failed.get())),
            ("retried", Json::from(m.retried.get())),
            ("starved_rounds", Json::from(served.starvation_rounds(i))),
            ("throughput_jobs_per_s", Json::from(m.completed.get() as f64 / elapsed_s)),
            (
                "latency_ms",
                Json::obj([
                    ("p50", Json::from(p50)),
                    ("p95", Json::from(p95)),
                    ("p99", Json::from(p99)),
                    ("mean", Json::from(mean)),
                ]),
            ),
        ]));
    }
    Json::obj([
        ("policy", Json::from(cfg.policy.label())),
        ("mode", Json::from(cfg.mode.label())),
        ("seed", Json::from(cfg.seed)),
        ("tenants", Json::from(cfg.tenants)),
        ("workers", Json::from(cfg.workers)),
        ("data_plane_workers", Json::from(served.data_plane_workers())),
        ("queue_capacity", Json::from(cfg.queue_capacity)),
        ("offered_rate_hz", Json::from(cfg.rate_hz)),
        ("elapsed_virtual_ms", Json::from(elapsed.as_millis_f64())),
        ("jobs_submitted", Json::from(total_submitted)),
        ("jobs_completed", Json::from(total_completed)),
        ("jobs_rejected", Json::from(total_rejected)),
        ("jobs_failed", Json::from(total_failed)),
        ("jobs_retried", Json::from(total_retried)),
        ("achieved_throughput_jobs_per_s", Json::from(total_completed as f64 / elapsed_s)),
        ("per_tenant", Json::Arr(per_tenant)),
    ])
}

/// [`report_json`] plus host wall-clock figures (non-deterministic):
/// elapsed seconds since warm-up and wall-clock jobs/second — the number
/// the data-plane worker count actually moves.
pub fn report_json_with_wall(served: &Served, cfg: &LoadgenConfig) -> Json {
    let base = report_json(served, cfg);
    let wall_s = served.wall_elapsed().map(|d| d.as_secs_f64()).unwrap_or(0.0);
    let completed = base.get("jobs_completed").and_then(Json::as_u64).unwrap_or(0) as f64;
    let wall_jobs_per_s = if wall_s > 0.0 { completed / wall_s } else { 0.0 };
    match base {
        Json::Obj(mut fields) => {
            fields.push(("wall_elapsed_s".to_string(), Json::from(wall_s)));
            fields.push(("wall_jobs_per_s".to_string(), Json::from(wall_jobs_per_s)));
            Json::Obj(fields)
        }
        other => other,
    }
}

//! The job service: multi-tenant ingestion in front of a shared
//! [`MulticlContext`].
//!
//! Submissions go through per-tenant admission control
//! ([`Served::submit`]); admitted jobs wait in bounded tenant queues until
//! a dispatch round ([`Served::dispatch_round`]) drains them — weighted
//! round-robin across tenants — onto the service's pool of worker
//! [`SchedQueue`]s. The round ends with one context-wide synchronization,
//! which is exactly a MultiCL scheduling epoch: under `AUTO_FIT` the mapper
//! load-balances the *mixture* of tenants' kernels across devices each
//! round.
//!
//! Every lifecycle transition emits a [`SchedEvent`] job variant through
//! the context's observer stream, interleaved with the scheduler's own
//! epoch events, so one JSONL sink captures the full picture.

use crate::metrics::ServiceMetrics;
use crate::slo::{SloConfig, SloTracker};
use crate::spec::{JobSpec, StepOp};
use crate::tenant::{PendingJob, RejectReason, TenantConfig, TenantState};
use clrt::error::ClResult;
use clrt::{ArgValue, KernelBody, KernelCtx, NdRange, Platform};
use hwsim::sync::Mutex;
use hwsim::{CommandKind, KernelCostSpec, SimDuration, SimTime, TransferKind};
use multicl::profile::{DeviceProfile, ProfileCache};
use multicl::telemetry::{SchedEvent, SchedObserver, SegmentKind, SpanSlice, TraceContext};
use multicl::{ContextSchedPolicy, MulticlContext, QueueSchedFlags, SchedOptions, SchedQueue};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Scheduling policy of the service backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// MultiCL `AUTO_FIT`: per-epoch makespan-optimal queue→device mapping.
    AutoFit,
    /// MultiCL `ROUND_ROBIN`: each worker queue bound once, round-robin.
    RoundRobin,
    /// `SCHED_OFF`: workers statically bound round-robin at creation —
    /// stock-OpenCL behaviour, the no-scheduler baseline.
    Off,
}

impl ServePolicy {
    /// Parse a CLI spelling (`auto_fit`, `round_robin`, `off`, ...).
    pub fn parse(s: &str) -> Option<ServePolicy> {
        match s.to_ascii_lowercase().as_str() {
            "auto_fit" | "autofit" | "auto" => Some(ServePolicy::AutoFit),
            "round_robin" | "roundrobin" | "rr" => Some(ServePolicy::RoundRobin),
            "off" | "sched_off" | "none" => Some(ServePolicy::Off),
            _ => None,
        }
    }

    /// Stable lowercase label (file names, reports).
    pub fn label(self) -> &'static str {
        match self {
            ServePolicy::AutoFit => "auto_fit",
            ServePolicy::RoundRobin => "round_robin",
            ServePolicy::Off => "sched_off",
        }
    }
}

impl std::fmt::Display for ServePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Retry policy for jobs whose dispatch ends in a device failure:
/// capped exponential backoff, bounded attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total dispatches allowed per job (first try included). A job whose
    /// `max_attempts`-th dispatch fails is abandoned with
    /// [`FailReason::RetryExhausted`].
    pub max_attempts: u32,
    /// Backoff before retry 1 (doubles each further retry).
    pub backoff_base: SimDuration,
    /// Upper bound on any single backoff.
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Backoff after the `attempts`-th failed dispatch:
    /// `base * 2^(attempts-1)`, capped.
    pub fn backoff_after(&self, attempts: u32) -> SimDuration {
        let shift = attempts.saturating_sub(1).min(20);
        let backoff = self.backoff_base * (1u64 << shift);
        if backoff > self.backoff_cap {
            self.backoff_cap
        } else {
            backoff
        }
    }
}

/// Configuration of a [`Served`] instance.
pub struct ServiceConfig {
    /// Backend scheduling policy.
    pub policy: ServePolicy,
    /// Worker queue pool size (dispatch slots per round).
    pub workers: usize,
    /// The tenants, in stable order (their index is the submission handle).
    pub tenants: Vec<TenantConfig>,
    /// Scheduler options for the underlying context (profile cache,
    /// observers, ...).
    pub options: SchedOptions,
    /// Retry policy for fault-failed dispatches.
    pub retry: RetryPolicy,
    /// Per-tenant latency SLO with burn-rate alerting; `None` disables SLO
    /// monitoring entirely.
    pub slo: Option<SloConfig>,
}

impl ServiceConfig {
    /// A config with serving-default scheduler options: the adaptive mapper,
    /// so a mapping decision over a large worker pool stays within the node
    /// budget instead of searching a `D^Q` space exactly. SLO monitoring is
    /// on by default with the paired fast/slow burn alerts.
    pub fn new(policy: ServePolicy, workers: usize, tenants: Vec<TenantConfig>) -> ServiceConfig {
        let options =
            SchedOptions { mapper: multicl::MapperKind::Adaptive, ..SchedOptions::default() };
        ServiceConfig {
            policy,
            workers,
            tenants,
            options,
            retry: RetryPolicy::default(),
            slo: Some(SloConfig::default()),
        }
    }
}

/// Internal observer capturing the scheduler's per-epoch profiling windows
/// on the virtual timeline — the trace attribution needs them to split
/// dispatch-window gaps into profiling time vs. plain queueing.
#[derive(Default)]
struct EpochTap {
    begin: Mutex<Option<SimTime>>,
    windows: Mutex<Vec<(SimTime, SimTime)>>,
}

impl EpochTap {
    fn window_count(&self) -> usize {
        self.windows.lock().len()
    }

    fn windows_since(&self, mark: usize) -> Vec<(SimTime, SimTime)> {
        let windows = self.windows.lock();
        windows[mark.min(windows.len())..].to_vec()
    }
}

impl SchedObserver for EpochTap {
    fn on_event(&self, event: &SchedEvent) {
        match event {
            SchedEvent::EpochBegin { at, .. } => *self.begin.lock() = Some(*at),
            SchedEvent::EpochEnd { profiling, .. } => {
                if let Some(begin) = self.begin.lock().take() {
                    if !profiling.is_zero() {
                        self.windows.lock().push((begin, begin + *profiling));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Scheduler options whose device profile is pre-measured on a *scratch*
/// platform (same node config) and stored in a cache at `dir`, so creating
/// the serving context never charges device-profiling time to the serving
/// clock. This makes the virtual timeline identical across runs whether or
/// not a cache already existed — the property the deterministic load
/// generator relies on. Like [`ServiceConfig::new`], serving uses the
/// adaptive mapper (the decision itself is host time, not virtual time,
/// but pools are large enough that an unbounded exact search would be the
/// scheduler's real-world bottleneck).
pub fn warmed_options(platform: &Platform, dir: impl Into<PathBuf>) -> SchedOptions {
    let cache = ProfileCache::at(dir);
    let fingerprint = platform.node().fingerprint();
    if cache.load(&fingerprint).is_none() {
        let scratch = Platform::new(platform.node().clone());
        let profile = DeviceProfile::measure(&scratch);
        let _ = cache.store(&profile);
    }
    SchedOptions {
        profile_cache: cache,
        mapper: multicl::MapperKind::Adaptive,
        // Serving opts into feature-based cost prediction so templates the
        // model is confident about never pay a profiling epoch — the
        // cold-start path `warm_programs` would otherwise hide behind
        // throwaway jobs. `predictor_persist` stays `false`: the load
        // generator compares same-seed runs byte-for-byte, and a model
        // persisted by run 1 would make run 2 start trained.
        predictor_confidence: multicl::DEFAULT_PREDICTOR_CONFIDENCE,
        ..SchedOptions::default()
    }
}

/// A kernel body synthesized from a [`JobSpec`] kernel declaration: the
/// cost plane comes from the spec; the data plane performs real host
/// computation plus a device-latency wait, both proportional to the
/// spec's nominal flop count, so buffer residency behaves exactly as for
/// hand-written kernels *and* the runtime's data-plane worker pool has
/// genuine work to overlap — the load behind the `dataplane` bench's
/// wall-clock numbers.
struct SpecKernel {
    name: String,
    arity: usize,
    cost: KernelCostSpec,
}

impl KernelBody for SpecKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn cost(&self) -> KernelCostSpec {
        self.cost
    }

    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        if self.arity == 0 {
            return;
        }
        let items = ctx.nd().global_items();
        let data = ctx.slice_mut::<f64>(0);
        if data.is_empty() {
            return;
        }
        // Host-side prep: a deterministic FMA chain over the pre-launch
        // contents. Only `data[0]` is written, at the end, so the result
        // is a pure function of the inputs — identical for any worker
        // count.
        let flops = self.cost.flops_per_item.max(1.0) * items as f64;
        let steps = (flops / 512.0) as u64;
        let len = data.len();
        let mut acc = 1.0f64;
        for i in 0..steps {
            acc = acc.mul_add(0.999_999_9, data[i as usize % len] * 1e-6);
        }
        data[0] += acc;
        // Device-latency stand-in: occupy this data-plane task for a
        // duration proportional to the kernel's nominal flop count, the
        // way a real dispatch occupies its host thread until the device
        // completes. This wait — not the prep loop — is what the worker
        // pool overlaps, so the `dataplane` bench shows wall-clock wins
        // even on single-core hosts. Sleeping never touches buffer data,
        // so worker-count invariance is unaffected. (Debug builds wait
        // ~17x less — dev test suites should not pay bench-grade load.)
        let ns_per_flop = if cfg!(debug_assertions) { 0.015 } else { 0.25 };
        let wait = std::time::Duration::from_nanos((flops * ns_per_flop) as u64);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }
}

/// Why a dispatched job terminally failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// The deadline passed before the job could finish.
    DeadlineExceeded,
    /// Every allowed dispatch ended in a device failure.
    RetryExhausted {
        /// Dispatches attempted (== the policy's `max_attempts`).
        attempts: u32,
        /// The fault kind of the last failed dispatch.
        last_error: String,
    },
    /// No healthy device remained to run the job on.
    NoHealthyDevices,
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::DeadlineExceeded => f.write_str("deadline_exceeded"),
            FailReason::RetryExhausted { attempts, last_error } => {
                write!(f, "retry_exhausted after {attempts} attempt(s): {last_error}")
            }
            FailReason::NoHealthyDevices => f.write_str("no_healthy_devices"),
        }
    }
}

/// Terminal state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResult {
    /// The job's command stream executed cleanly.
    Completed,
    /// The job was abandoned.
    Failed(FailReason),
}

/// The record of one finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Service-wide job id.
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Virtual submission time.
    pub submitted_at: SimTime,
    /// Virtual completion time (last device command of the job).
    pub completed_at: SimTime,
    /// Submission-to-completion latency.
    pub latency: SimDuration,
    /// How the job ended.
    pub result: JobResult,
}

/// The multi-tenant job service. See the module docs for the data flow.
///
/// `Served` is `Sync`: submissions may come from many threads concurrently
/// (admission control is per-tenant locking); dispatch rounds serialize on
/// the scheduler's own pass lock. Deterministic single-threaded driving —
/// what the load generator does — is a special case.
pub struct Served {
    platform: Platform,
    ctx: MulticlContext,
    workers: Vec<SchedQueue>,
    /// Out-of-order twins of `workers`, used for jobs whose spec sets
    /// `out_of_order`: same scheduling policy plus `SCHED_OUT_OF_ORDER`,
    /// so their launches flow through the epoch batch reorderer. Empty
    /// under [`ServePolicy::Off`] (static binding ignores the flag), and
    /// inert — queues with no pending work never enter the scheduling
    /// pool — until some job opts in.
    ooo_workers: Vec<SchedQueue>,
    /// Splittable twins of `workers`, used for jobs whose spec sets
    /// `splittable`: same scheduling policy plus `SCHED_SPLITTABLE`, so
    /// split-capable kernels may be partitioned across devices. Empty under
    /// [`ServePolicy::Off`], inert until some job opts in.
    split_workers: Vec<SchedQueue>,
    tenants: Vec<TenantState>,
    metrics: ServiceMetrics,
    retry: RetryPolicy,
    /// Profiling-window recorder attached to the context's observer list.
    tap: Arc<EpochTap>,
    /// SLO burn-rate state (`None` when monitoring is disabled).
    slo: Option<Mutex<SloTracker>>,
    next_job: AtomicU64,
    /// Rotates which tenant a round's weighted sweep starts at, so equal
    /// weights get equal long-run shares.
    rr_start: AtomicUsize,
    /// Built programs keyed by kernel signature. `clBuildProgram` charges
    /// real host time (doubled by MultiCL's minikernel pass), so the
    /// service compiles each job template once and reuses the program —
    /// what any production OpenCL service does.
    programs: Mutex<HashMap<String, clrt::Program>>,
    /// Virtual time at which the service finished start-up (program
    /// warm-up); throughput should be measured from here.
    serving_since: Mutex<SimTime>,
    /// Host wall-clock instant matching [`Self::serving_since`] (`None`
    /// until warm-up finishes). Basis for wall-clock throughput, which —
    /// unlike everything virtual — depends on the data-plane worker count.
    wall_serving_since: Mutex<Option<std::time::Instant>>,
    outcomes: Mutex<Vec<JobOutcome>>,
}

impl Served {
    /// Build the service: one shared context, `workers` scheduler queues.
    pub fn new(platform: &Platform, config: ServiceConfig) -> ClResult<Served> {
        let ServiceConfig { policy, workers, tenants, mut options, retry, slo } = config;
        let ctx_policy = match policy {
            ServePolicy::AutoFit => ContextSchedPolicy::AutoFit,
            _ => ContextSchedPolicy::RoundRobin,
        };
        let tap = Arc::new(EpochTap::default());
        options.observers.push(tap.clone());
        let slo = slo.map(|c| Mutex::new(SloTracker::new(c, tenants.len())));
        let ctx = MulticlContext::with_options(platform, ctx_policy, options)?;
        let devices = ctx.cl().devices().to_vec();
        let workers = (0..workers.max(1))
            .map(|i| match policy {
                ServePolicy::Off => ctx.create_queue_on(devices[i % devices.len()]),
                _ => ctx.create_queue(QueueSchedFlags::SCHED_AUTO_DYNAMIC),
            })
            .collect::<ClResult<Vec<_>>>()?;
        let ooo_workers = match policy {
            ServePolicy::Off => Vec::new(),
            _ => (0..workers.len())
                .map(|_| {
                    ctx.create_queue(
                        QueueSchedFlags::SCHED_AUTO_DYNAMIC | QueueSchedFlags::SCHED_OUT_OF_ORDER,
                    )
                })
                .collect::<ClResult<Vec<_>>>()?,
        };
        let split_workers = match policy {
            ServePolicy::Off => Vec::new(),
            _ => (0..workers.len())
                .map(|_| {
                    ctx.create_queue(
                        QueueSchedFlags::SCHED_AUTO_DYNAMIC | QueueSchedFlags::SCHED_SPLITTABLE,
                    )
                })
                .collect::<ClResult<Vec<_>>>()?,
        };
        let names: Vec<String> = tenants.iter().map(|t| t.name.clone()).collect();
        Ok(Served {
            platform: platform.clone(),
            ctx,
            workers,
            ooo_workers,
            split_workers,
            tenants: tenants.into_iter().map(TenantState::new).collect(),
            metrics: ServiceMetrics::new(&names),
            retry,
            tap,
            slo,
            next_job: AtomicU64::new(1),
            rr_start: AtomicUsize::new(0),
            programs: Mutex::new(HashMap::new()),
            serving_since: Mutex::new(SimTime::ZERO),
            wall_serving_since: Mutex::new(None),
            outcomes: Mutex::new(Vec::new()),
        })
    }

    /// The underlying scheduling context (observers, stats, policy).
    pub fn context(&self) -> &MulticlContext {
        &self.ctx
    }

    /// The service metric set.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Name of tenant `i`.
    pub fn tenant_name(&self, i: usize) -> &str {
        &self.tenants[i].config.name
    }

    /// Number of worker queues (dispatch slots per round).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The worker queue serving dispatch slot `slot` for `spec`: the
    /// out-of-order twin when the spec opts in (and the policy honors the
    /// flag), the splittable twin for `splittable` specs, the strict
    /// in-order worker otherwise.
    fn worker_for(&self, slot: usize, spec: &JobSpec) -> &SchedQueue {
        if spec.out_of_order && !self.ooo_workers.is_empty() {
            &self.ooo_workers[slot]
        } else if spec.splittable && !self.split_workers.is_empty() {
            &self.split_workers[slot]
        } else {
            &self.workers[slot]
        }
    }

    /// Current device binding of each worker queue (updated by the
    /// scheduler at epoch boundaries — including fault evacuations).
    pub fn worker_devices(&self) -> Vec<hwsim::DeviceId> {
        self.workers.iter().map(SchedQueue::device).collect()
    }

    /// Earliest virtual time at which any tenant's front job becomes
    /// dispatchable (`None` when every queue is empty). Past this instant
    /// at least one job escapes its retry backoff window.
    pub fn next_ready_at(&self) -> Option<SimTime> {
        self.tenants.iter().filter_map(|t| t.queue.lock().front().map(|j| j.not_before)).min()
    }

    /// Host threads executing kernel bodies and transfers (the runtime's
    /// data plane). Affects wall-clock throughput only, never virtual time.
    pub fn data_plane_workers(&self) -> usize {
        self.platform.data_plane_workers()
    }

    /// Snapshot of the runtime's data-plane executor counters.
    pub fn data_plane_stats(&self) -> clrt::DataPlaneStats {
        self.platform.data_plane_stats()
    }

    /// Host wall-clock time since start-up finished (`None` before any
    /// [`Self::warm_programs`] call).
    pub fn wall_elapsed(&self) -> Option<std::time::Duration> {
        self.wall_serving_since.lock().map(|t| t.elapsed())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.platform.now()
    }

    /// Advance the virtual clock to `t` (idle host time). No-op if `t` is
    /// in the past. The load generator uses this to jump to the next
    /// arrival when the service is idle.
    pub fn advance_to(&self, t: SimTime) {
        let now = self.platform.now();
        let gap = t.saturating_since(now);
        if !gap.is_zero() {
            self.platform.with_engine(|e| e.host_busy(gap));
        }
    }

    /// Total admitted-but-undispatched jobs across tenants.
    pub fn backlog(&self) -> usize {
        self.tenants.iter().map(TenantState::depth).sum()
    }

    /// Rounds in which tenant `i` had backlog but received no slot.
    pub fn starvation_rounds(&self, tenant: usize) -> u64 {
        self.tenants[tenant].starvation_rounds()
    }

    /// All finished jobs so far, completion order.
    pub fn outcomes(&self) -> Vec<JobOutcome> {
        self.outcomes.lock().clone()
    }

    /// Remove and return every admitted-but-undispatched job of `tenant`
    /// as `(spec, deadline)` pairs ready for re-submission elsewhere. The
    /// cluster rebalancer drains a degraded shard's backlog through this
    /// before re-routing the tenant to a healthy shard.
    pub(crate) fn drain_tenant_backlog(&self, tenant: usize) -> Vec<(JobSpec, Option<SimTime>)> {
        let state = &self.tenants[tenant];
        let jobs: Vec<_> = state.queue.lock().drain(..).map(|j| (j.spec, j.deadline)).collect();
        self.metrics.tenant(tenant).depth.set(0.0);
        jobs
    }

    /// Submit a job for `tenant`. Validates the spec, then applies
    /// admission control against the tenant's bounded queue. Returns the
    /// job id, or the rejection reason (spec error or backpressure).
    pub fn submit(&self, tenant: usize, spec: JobSpec) -> Result<u64, RejectReason> {
        self.submit_with_deadline(tenant, spec, None)
    }

    /// [`Self::submit`] with a completion deadline: past it the job is
    /// abandoned ([`FailReason::DeadlineExceeded`]) instead of being
    /// (re)dispatched.
    pub fn submit_with_deadline(
        &self,
        tenant: usize,
        spec: JobSpec,
        deadline: Option<SimTime>,
    ) -> Result<u64, RejectReason> {
        let state = &self.tenants[tenant];
        let job = self.next_job.fetch_add(1, Ordering::Relaxed);
        let now = self.platform.now();
        let epoch = self.ctx.current_epoch();
        let name = state.config.name.clone();
        self.ctx.emit_event(&SchedEvent::JobSubmitted {
            epoch,
            tenant: name.clone(),
            job,
            at: now,
        });
        self.metrics.tenant(tenant).submitted.inc();
        if let Err(e) = spec.validate() {
            let reason = RejectReason::InvalidSpec(e);
            self.reject(tenant, &name, job, &reason, now);
            return Err(reason);
        }
        let capacity = self.shed_capacity(state.config.capacity);
        let depth = {
            let mut queue = state.queue.lock();
            if queue.len() >= capacity {
                let reason = RejectReason::QueueFull { depth: queue.len(), capacity };
                drop(queue);
                self.reject(tenant, &name, job, &reason, now);
                return Err(reason);
            }
            queue.push_back(PendingJob {
                id: job,
                spec,
                submitted_at: now,
                deadline,
                attempts: 0,
                not_before: now,
                trace: TraceContext::new(job, now),
            });
            queue.len()
        };
        self.metrics.tenant(tenant).admitted.inc();
        self.metrics.tenant(tenant).depth.set(depth as f64);
        self.ctx.emit_event(&SchedEvent::JobAdmitted { epoch, tenant: name, job, depth, at: now });
        Ok(job)
    }

    fn reject(&self, tenant: usize, name: &str, job: u64, reason: &RejectReason, at: SimTime) {
        self.metrics.tenant(tenant).rejected.inc();
        self.ctx.emit_event(&SchedEvent::JobRejected {
            epoch: self.ctx.current_epoch(),
            tenant: name.to_string(),
            job,
            reason: reason.to_string(),
            at,
        });
    }

    /// Graceful degradation: when devices are down, admission capacity
    /// shrinks proportionally to the healthy fraction, shedding offered
    /// load through the existing backpressure path instead of queueing
    /// work the shrunken node cannot absorb. With every device down the
    /// effective capacity is zero and everything is rejected.
    fn shed_capacity(&self, configured: usize) -> usize {
        let total = self.ctx.cl().devices().len().max(1);
        let healthy = self.ctx.healthy_devices().len();
        if healthy == total {
            configured
        } else {
            (configured * healthy).div_ceil(total)
        }
    }

    /// Record a terminal failure for `job`: counters, a
    /// [`SchedEvent::RetryExhausted`] telemetry event (`reason` strings
    /// distinguish deadline misses, abandoned retries, and dead nodes),
    /// and a [`JobOutcome`] with the typed [`FailReason`].
    fn fail_job(&self, tenant: usize, job: &PendingJob, reason: FailReason, now: SimTime) {
        self.metrics.tenant(tenant).failed.inc();
        self.metrics.tenant(tenant).depth.set(self.tenants[tenant].depth() as f64);
        let epoch = self.ctx.current_epoch();
        let name = self.tenants[tenant].config.name.clone();
        self.ctx.emit_event(&SchedEvent::RetryExhausted {
            epoch,
            tenant: name.clone(),
            job: job.id,
            attempts: u64::from(job.attempts),
            reason: reason.to_string(),
            at: now,
        });
        let outcome = match &reason {
            FailReason::DeadlineExceeded => "deadline_exceeded",
            FailReason::RetryExhausted { .. } => "retry_exhausted",
            FailReason::NoHealthyDevices => "no_healthy_devices",
        };
        // Callers record the terminal (pseudo-)attempt on the trace before
        // failing the job, so the span store covers [submitted_at, now].
        self.ctx.emit_event(&SchedEvent::JobTrace {
            epoch,
            tenant: name,
            job: job.id,
            submitted_at: job.submitted_at,
            completed_at: job.trace.last_end(),
            outcome: outcome.into(),
            attempts: job.trace.attempts.clone(),
        });
        self.note_outcome(tenant, now, true);
        self.outcomes.lock().push(JobOutcome {
            id: job.id,
            tenant,
            submitted_at: job.submitted_at,
            completed_at: now,
            latency: now.saturating_since(job.submitted_at),
            result: JobResult::Failed(reason),
        });
    }

    /// Feed one terminal outcome into the SLO tracker and emit any alert
    /// transitions it causes. `bad` counts against the tenant's error
    /// budget (failures, and completions slower than the latency target).
    fn note_outcome(&self, tenant: usize, at: SimTime, bad: bool) {
        let Some(slo) = &self.slo else { return };
        let transitions = {
            let mut tracker = slo.lock();
            tracker.record(tenant, at, bad);
            tracker.evaluate(tenant, at)
        };
        let epoch = self.ctx.current_epoch();
        for t in transitions {
            if t.fired {
                self.metrics.tenant(tenant).slo_alerts.inc();
            }
            self.ctx.emit_event(&t.to_event(epoch, self.tenants[tenant].config.name.clone(), at));
        }
    }

    /// Weighted-round-robin selection of up to `worker_count` jobs: sweep
    /// the tenants (rotating the starting tenant each round), each sweep
    /// granting a tenant up to `weight` jobs, until the slots are full or
    /// every queue is empty. Jobs still inside their retry backoff window
    /// (`not_before > now`) block their tenant's FIFO for the round rather
    /// than being overtaken. Deterministic given queue contents and clock.
    fn select_round(&self, now: SimTime) -> Vec<(usize, PendingJob)> {
        let n = self.tenants.len();
        if n == 0 {
            return Vec::new();
        }
        let ready = |t: &TenantState| t.queue.lock().front().is_some_and(|j| j.not_before <= now);
        let backlogged: Vec<bool> = self.tenants.iter().map(ready).collect();
        let start = self.rr_start.fetch_add(1, Ordering::Relaxed) % n;
        let mut slots = self.workers.len();
        let mut picks: Vec<(usize, PendingJob)> = Vec::new();
        let mut progressed = true;
        while slots > 0 && progressed {
            progressed = false;
            for k in 0..n {
                let t = (start + k) % n;
                let state = &self.tenants[t];
                let share = state.config.weight as usize;
                let mut queue = state.queue.lock();
                for _ in 0..share.min(slots) {
                    if queue.front().is_none_or(|j| j.not_before > now) {
                        break;
                    }
                    picks.push((t, queue.pop_front().expect("front checked")));
                    slots -= 1;
                    progressed = true;
                }
                if slots == 0 {
                    break;
                }
            }
        }
        for (t, was_backlogged) in backlogged.iter().enumerate() {
            if *was_backlogged && !picks.iter().any(|(pt, _)| *pt == t) {
                self.tenants[t].note_starved();
                self.metrics.tenant(t).starved_rounds.inc();
            }
        }
        picks
    }

    /// Drain one dispatch round: select jobs (weighted round-robin), issue
    /// each onto its own worker queue, synchronize the context (one
    /// scheduling epoch), and account completions. Dispatches that end in
    /// an injected device failure are retried with capped exponential
    /// backoff (re-queued at the tenant's front) until the retry budget or
    /// the job's deadline runs out. Returns the number of jobs that reached
    /// a terminal outcome — completed or failed — this round (0 = nothing
    /// dispatchable).
    pub fn dispatch_round(&self) -> usize {
        let now = self.platform.now();
        let picks = self.select_round(now);
        if picks.is_empty() {
            return 0;
        }
        // Jobs that must not be dispatched at all: the node has no healthy
        // device left, or the deadline already passed while queued.
        let healthy = self.ctx.healthy_devices().len();
        let mut terminal = 0usize;
        let mut live: Vec<(usize, PendingJob)> = Vec::with_capacity(picks.len());
        for (tenant, mut job) in picks {
            if healthy == 0 {
                job.trace.record_undispatched(self.ctx.current_epoch(), job.not_before, now);
                self.fail_job(tenant, &job, FailReason::NoHealthyDevices, now);
                terminal += 1;
            } else if job.deadline.is_some_and(|d| d < now) {
                job.trace.record_undispatched(self.ctx.current_epoch(), job.not_before, now);
                self.fail_job(tenant, &job, FailReason::DeadlineExceeded, now);
                terminal += 1;
            } else {
                live.push((tenant, job));
            }
        }
        if live.is_empty() {
            return terminal;
        }
        // Position in the trace's monotone push counter, not an index into
        // `records`: stable even when a trace capacity bound evicts old
        // records mid-run.
        let trace_offset = self.platform.with_engine(|e| e.trace().total_pushed());
        let failure_offset = self.platform.with_engine(|e| e.failure_count());
        let window_mark = self.tap.window_count();
        let epoch = self.ctx.current_epoch();
        let mut dispatch_times: Vec<SimTime> = Vec::with_capacity(live.len());
        for (slot, (tenant, job)) in live.iter().enumerate() {
            let worker = self.worker_for(slot, &job.spec);
            self.metrics.tenant(*tenant).depth.set(self.tenants[*tenant].depth() as f64);
            self.metrics.tenant(*tenant).dispatched.inc();
            let dispatched_at = self.platform.now();
            dispatch_times.push(dispatched_at);
            self.ctx.emit_event(&SchedEvent::JobDispatched {
                epoch,
                tenant: self.tenants[*tenant].config.name.clone(),
                job: job.id,
                queue: worker.id(),
                at: dispatched_at,
            });
            self.issue_job(worker, &job.spec, job.id).expect("validated spec issues cleanly");
        }
        // One synchronization epoch: the scheduler maps the combined pool.
        self.ctx.finish_all();
        // Attribute completion times and span slices: every trace record
        // issued this round on a worker's queue belongs to the single job
        // dispatched there. Kernel records become compute slices, H2D/D2H
        // payload transfers their own kinds, and staged device-to-device
        // traffic — which only exists because the mapper moved the queue —
        // is the remap segment. Injected failures are attributed the same
        // way, via the engine's failure ledger (`FailureRecord.queue` is
        // the clrt trace id).
        let mut worker_end: HashMap<usize, SimTime> = HashMap::new();
        let mut worker_slices: HashMap<usize, Vec<SpanSlice>> = HashMap::new();
        self.platform.with_engine(|e| {
            for r in e.trace().records_since(trace_offset) {
                let end = worker_end.entry(r.queue).or_insert(SimTime::ZERO);
                *end = (*end).max(r.stamp.end);
                let kind = match &r.kind {
                    CommandKind::Kernel { .. } => SegmentKind::Compute,
                    CommandKind::Transfer { kind: TransferKind::HostToDevice, .. } => {
                        SegmentKind::H2d
                    }
                    CommandKind::Transfer { kind: TransferKind::DeviceToHost, .. } => {
                        SegmentKind::D2h
                    }
                    CommandKind::Transfer { kind: TransferKind::DeviceToDevice, .. } => {
                        SegmentKind::Remap
                    }
                    CommandKind::Marker => continue,
                };
                worker_slices.entry(r.queue).or_default().push(SpanSlice {
                    kind,
                    start: r.stamp.start,
                    end: r.stamp.end,
                });
            }
        });
        for slices in worker_slices.values_mut() {
            slices.sort_by_key(|s| (s.start, s.end));
        }
        let profiling = self.tap.windows_since(window_mark);
        let failed_queues: HashMap<usize, hwsim::FaultKind> = self.platform.with_engine(|e| {
            e.failures()[failure_offset..].iter().map(|f| (f.queue, f.kind)).collect()
        });
        let now = self.platform.now();
        let completed_epoch = self.ctx.current_epoch();
        let no_slices: Vec<SpanSlice> = Vec::new();
        for (slot, (tenant, mut job)) in live.into_iter().enumerate() {
            let worker = self.worker_for(slot, &job.spec);
            let slices = worker_slices.get(&worker.trace_id()).unwrap_or(&no_slices);
            let device = Some(worker.device().index() as u64);
            if let Some(kind) = failed_queues.get(&worker.trace_id()) {
                let attempts = job.attempts + 1;
                // The faulted attempt's window runs to the round's end.
                job.trace.record_attempt(
                    worker.id() as u64,
                    device,
                    completed_epoch,
                    job.not_before,
                    dispatch_times[slot],
                    now,
                    slices,
                    &profiling,
                );
                if job.deadline.is_some_and(|d| d < now) {
                    self.fail_job(
                        tenant,
                        &PendingJob { attempts, ..job },
                        FailReason::DeadlineExceeded,
                        now,
                    );
                    terminal += 1;
                } else if attempts >= self.retry.max_attempts {
                    let reason =
                        FailReason::RetryExhausted { attempts, last_error: kind.to_string() };
                    self.fail_job(tenant, &PendingJob { attempts, ..job }, reason, now);
                    terminal += 1;
                } else {
                    // Transient faults back off before the retry; a lost
                    // device needs no delay — the scheduler blacklists it
                    // and evacuates its queues at the next epoch boundary,
                    // so an immediate retry lands on a healthy device.
                    let delay = if kind.is_transient() {
                        self.retry.backoff_after(attempts)
                    } else {
                        SimDuration::ZERO
                    };
                    self.metrics.tenant(tenant).retried.inc();
                    let state = &self.tenants[tenant];
                    state.queue.lock().push_front(PendingJob {
                        attempts,
                        not_before: now + delay,
                        ..job
                    });
                    self.metrics.tenant(tenant).depth.set(state.depth() as f64);
                }
                continue;
            }
            let completed_at = worker_end.get(&worker.trace_id()).copied().unwrap_or(now);
            job.trace.record_attempt(
                worker.id() as u64,
                device,
                completed_epoch,
                job.not_before,
                dispatch_times[slot],
                completed_at,
                slices,
                &profiling,
            );
            // The trace clamps against non-monotone inputs; read the
            // completion instant back so latency and segments agree exactly.
            let completed_at = job.trace.last_end();
            let latency = completed_at.saturating_since(job.submitted_at);
            self.metrics.tenant(tenant).completed.inc();
            self.metrics.record_latency(tenant, latency);
            let name = self.tenants[tenant].config.name.clone();
            self.ctx.emit_event(&SchedEvent::JobCompleted {
                epoch: completed_epoch,
                tenant: name.clone(),
                job: job.id,
                latency,
                at: completed_at,
            });
            self.ctx.emit_event(&SchedEvent::JobTrace {
                epoch: completed_epoch,
                tenant: name,
                job: job.id,
                submitted_at: job.submitted_at,
                completed_at,
                outcome: "completed".into(),
                attempts: job.trace.attempts.clone(),
            });
            let over_target =
                self.slo.as_ref().is_some_and(|slo| slo.lock().is_bad_latency(latency));
            self.note_outcome(tenant, now, over_target);
            self.outcomes.lock().push(JobOutcome {
                id: job.id,
                tenant,
                submitted_at: job.submitted_at,
                completed_at,
                latency,
                result: JobResult::Completed,
            });
            terminal += 1;
        }
        terminal
    }

    /// Run dispatch rounds until every tenant queue is empty, advancing
    /// the virtual clock past retry backoff windows when nothing is
    /// dispatchable right now. Terminates because retries are bounded by
    /// the policy's `max_attempts`.
    pub fn run_until_drained(&self) {
        loop {
            self.dispatch_round();
            if self.backlog() == 0 {
                return;
            }
            // A round that only produced retries leaves backlog behind a
            // backoff window; jump the idle clock to the earliest ready
            // front so the next round can dispatch.
            if let Some(t) = self.next_ready_at() {
                if t > self.platform.now() {
                    self.advance_to(t);
                }
            }
        }
    }

    /// Compile the programs of a template library and run one throwaway
    /// instance of each template (service start-up). Afterwards no job pays
    /// the `clBuildProgram` cost on the serving path, and the scheduler's
    /// one-time per-kernel device profiling has already happened — without
    /// this, `AUTO_FIT` would pay its profiling passes exactly while the
    /// first burst of real jobs is testing admission capacity. Marks the
    /// end of start-up: [`Self::serving_since`] is set to the clock after
    /// the warm-up drains. Warm-up instances never touch tenant queues,
    /// metrics, or outcomes.
    ///
    /// When the scheduler's cost predictor is already confident about
    /// every launch in a template (a persisted model from a previous
    /// service run, loaded via `predictor_persist`), the throwaway
    /// instance buys nothing — the first real job is mapped from
    /// predictions, not a profiling epoch — so it is skipped and counted
    /// in `served_warmups_skipped_total`. Programs still compile for every
    /// template either way.
    pub fn warm_programs(&self, specs: &[JobSpec]) -> ClResult<()> {
        for spec in specs {
            self.program_for(spec)?;
        }
        for (i, spec) in specs.iter().enumerate() {
            if self.spec_predictor_confident(spec) {
                self.metrics.warmups_skipped.inc();
                continue;
            }
            self.issue_job(&self.workers[i % self.workers.len()], spec, u64::MAX)?;
        }
        self.ctx.finish_all();
        *self.serving_since.lock() = self.platform.now();
        *self.wall_serving_since.lock() = Some(std::time::Instant::now());
        Ok(())
    }

    /// Virtual time at which start-up finished (`ZERO` if no warm-up ran).
    pub fn serving_since(&self) -> SimTime {
        *self.serving_since.lock()
    }

    /// True when the scheduler's cost predictor is confident — on every
    /// healthy device — about every `Launch` step in `spec`, i.e. a
    /// warm-up instance would not save the first real job any profiling.
    /// Argument bytes mirror [`Self::issue_job`]: one `f64` buffer per
    /// distinct arg name, counted once however many positions bind it.
    fn spec_predictor_confident(&self, spec: &JobSpec) -> bool {
        let costs: HashMap<&str, KernelCostSpec> =
            spec.kernels.iter().map(|k| (k.name.as_str(), k.cost)).collect();
        let elements: HashMap<&str, usize> =
            spec.buffers.iter().map(|b| (b.name.as_str(), b.elements)).collect();
        let mut any_launch = false;
        for step in &spec.steps {
            let StepOp::Launch { kernel, global, local, args } = &step.op else {
                continue;
            };
            any_launch = true;
            let Some(cost) = costs.get(kernel.as_str()) else {
                return false;
            };
            let mut seen: Vec<&str> = Vec::new();
            let mut arg_bytes = 0u64;
            for arg in args {
                if !seen.contains(&arg.as_str()) {
                    seen.push(arg.as_str());
                    let elems = elements.get(arg.as_str()).copied().unwrap_or(0);
                    arg_bytes += (elems * std::mem::size_of::<f64>()) as u64;
                }
            }
            let shape = NdRange::d1(*global, *local).shape();
            if !self.ctx.predictor_confident(cost, shape, arg_bytes) {
                return false;
            }
        }
        any_launch
    }

    /// Get or build the program for `spec`'s kernel set. Keyed by the full
    /// kernel signature (name, arity, cost), so two templates sharing a
    /// kernel name but differing in cost get distinct programs.
    fn program_for(&self, spec: &JobSpec) -> ClResult<clrt::Program> {
        let arities = spec.kernel_arities();
        let key: String = spec
            .kernels
            .iter()
            .map(|k| {
                format!("{}/{}/{:?};", k.name, arities.get(&k.name).copied().unwrap_or(0), k.cost)
            })
            .collect();
        let mut programs = self.programs.lock();
        if let Some(p) = programs.get(&key) {
            return Ok(p.clone());
        }
        let bodies: Vec<Arc<dyn KernelBody>> = spec
            .kernels
            .iter()
            .map(|k| {
                Arc::new(SpecKernel {
                    name: k.name.clone(),
                    arity: arities.get(&k.name).copied().unwrap_or(0),
                    cost: k.cost,
                }) as Arc<dyn KernelBody>
            })
            .collect();
        let program = self.ctx.create_program(bodies)?;
        programs.insert(key, program.clone());
        Ok(program)
    }

    /// Issue one job's command stream onto `worker`: allocate its buffers,
    /// build its program, and walk the steps in topological order. Writes
    /// execute immediately (defining initial residency); launches buffer
    /// into the worker's pending epoch.
    fn issue_job(&self, worker: &SchedQueue, spec: &JobSpec, job_id: u64) -> ClResult<()> {
        let mut buffers: HashMap<&str, clrt::Buffer> = HashMap::new();
        for b in &spec.buffers {
            buffers.insert(b.name.as_str(), self.ctx.create_buffer_of::<f64>(b.elements)?);
        }
        let program = self.program_for(spec)?;
        let mut kernels: HashMap<&str, clrt::Kernel> = HashMap::new();
        for k in &spec.kernels {
            kernels.insert(k.name.as_str(), program.create_kernel(&k.name)?);
        }
        let order = spec.topo_order().expect("validated spec is acyclic");
        for idx in order {
            match &spec.steps[idx].op {
                StepOp::Write { buffer } => {
                    let buf = &buffers[buffer.as_str()];
                    let data = vec![job_id as f64; buf.len::<f64>()];
                    worker.enqueue_write(buf, &data)?;
                }
                StepOp::Launch { kernel, global, local, args } => {
                    let k = &kernels[kernel.as_str()];
                    for (pos, arg) in args.iter().enumerate() {
                        k.set_arg(pos, ArgValue::BufferMut(buffers[arg.as_str()].clone()))?;
                    }
                    worker.enqueue_ndrange(k, NdRange::d1(*global, *local))?;
                }
            }
        }
        Ok(())
    }
}

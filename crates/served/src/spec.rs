//! Declarative job specifications: a small DAG of buffer transfers and
//! kernel launches, encoded as JSON (parsed with `hwsim::json` — the
//! workspace's offline `serde_json` stand-in).
//!
//! A job spec declares its buffers, its kernels (with roofline cost
//! descriptions the scheduler's profiler consumes), and a list of steps.
//! Steps may name explicit dependencies (`after`); execution follows a
//! deterministic topological order that preserves declaration order among
//! ready steps, so the same spec always issues the same command stream.
//!
//! ```json
//! {
//!   "name": "blur-frame",
//!   "buffers": [{"name": "img", "elements": 16384}],
//!   "kernels": [{"name": "blur", "flops_per_item": 40.0, "bytes_per_item": 16.0}],
//!   "steps": [
//!     {"id": "load", "op": "write", "buffer": "img"},
//!     {"op": "launch", "kernel": "blur", "global": 16384, "local": 128,
//!      "args": ["img"], "after": ["load"]}
//!   ]
//! }
//! ```

use hwsim::json::Json;
use hwsim::{KernelCostSpec, KernelTraits};
use std::collections::HashMap;

/// Why a job spec was rejected by [`JobSpec::validate`] (or failed to
/// parse). Carried inside
/// [`RejectReason::InvalidSpec`](crate::tenant::RejectReason) so admission
/// control can report the exact cause back to the submitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The JSON was structurally malformed or missing a required field.
    Malformed(String),
    /// A step referenced an undeclared buffer, kernel, or step id.
    UnknownRef {
        /// Id of the referencing step.
        step: String,
        /// The name that did not resolve.
        name: String,
    },
    /// Two buffers, kernels, or steps share a name/id.
    Duplicate(String),
    /// The same kernel is launched with differing argument counts.
    ArityMismatch(String),
    /// The `after` edges form a cycle.
    Cycle(String),
    /// A size field was out of range (zero elements, zero launch geometry).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Malformed(m) => write!(f, "malformed spec: {m}"),
            SpecError::UnknownRef { step, name } => {
                write!(f, "step `{step}` references unknown name `{name}`")
            }
            SpecError::Duplicate(n) => write!(f, "duplicate name `{n}`"),
            SpecError::ArityMismatch(k) => {
                write!(f, "kernel `{k}` launched with inconsistent argument counts")
            }
            SpecError::Cycle(s) => write!(f, "dependency cycle involving step `{s}`"),
            SpecError::Invalid(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A buffer the job allocates (f64 elements).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferSpec {
    /// Name steps refer to.
    pub name: String,
    /// Number of f64 elements.
    pub elements: usize,
}

/// A kernel the job's program defines, with its roofline cost description
/// (what the scheduler's dynamic profiler measures against).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel function name (unique within the job).
    pub name: String,
    /// Per-work-item cost model handed to the simulator.
    pub cost: KernelCostSpec,
}

/// What one step does.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOp {
    /// `clEnqueueWriteBuffer`: host→device transfer defining where the named
    /// buffer initially lives.
    Write {
        /// Destination buffer name.
        buffer: String,
    },
    /// `clEnqueueNDRangeKernel`: a kernel launch with buffer arguments.
    Launch {
        /// Kernel name.
        kernel: String,
        /// Global work-items (1-D).
        global: u64,
        /// Work-items per workgroup.
        local: u64,
        /// Buffer names bound as mutable kernel arguments, in position order.
        args: Vec<String>,
    },
}

/// One node of the job DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSpec {
    /// Step id (unique within the job; auto-named `s<index>` when omitted
    /// from the JSON).
    pub id: String,
    /// The operation.
    pub op: StepOp,
    /// Ids of steps that must execute before this one. In-order queues give
    /// ordering for free; the edges make intent explicit and validated.
    pub after: Vec<String>,
}

/// A declarative job: buffers + kernels + a DAG of steps.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-readable job name (template name, not unique per instance).
    pub name: String,
    /// Buffers to allocate.
    pub buffers: Vec<BufferSpec>,
    /// Kernels the program defines.
    pub kernels: Vec<KernelSpec>,
    /// Steps in declaration order.
    pub steps: Vec<StepSpec>,
    /// Opt into out-of-order epoch execution: the job's launches flush
    /// through a `SCHED_OUT_OF_ORDER` queue, so the epoch reorderer may
    /// interleave them with other jobs' transfers (hazard edges still
    /// enforce this job's own data dependencies). Defaults to `false` —
    /// strict in-order execution, byte-identical with pre-flag streams.
    pub out_of_order: bool,
    /// Opt into data-parallel kernel splitting: the job's launches flush
    /// through a `SCHED_SPLITTABLE` queue, so split-capable kernels may be
    /// partitioned into sub-ranges across devices. Mutually exclusive with
    /// `out_of_order` (the queue flags themselves are). Defaults to `false`.
    pub splittable: bool,
}

impl JobSpec {
    /// Parse a spec from JSON text. The result is validated.
    pub fn parse_str(text: &str) -> Result<JobSpec, SpecError> {
        let json = Json::parse(text)
            .ok_or_else(|| SpecError::Malformed("unparseable JSON".to_string()))?;
        JobSpec::from_json(&json)
    }

    /// Parse a spec from a JSON value. The result is validated.
    pub fn from_json(json: &Json) -> Result<JobSpec, SpecError> {
        let str_field = |v: &Json, key: &str| -> Result<String, SpecError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| SpecError::Malformed(format!("missing string field `{key}`")))
        };
        let u64_field = |v: &Json, key: &str| -> Result<u64, SpecError> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Malformed(format!("missing integer field `{key}`")))
        };
        let arr_field = |v: &Json, key: &str| -> Result<Vec<Json>, SpecError> {
            v.get(key)
                .and_then(Json::as_arr)
                .map(<[Json]>::to_vec)
                .ok_or_else(|| SpecError::Malformed(format!("missing array field `{key}`")))
        };
        let opt_strings = |v: &Json, key: &str| -> Result<Vec<String>, SpecError> {
            match v.get(key) {
                None => Ok(vec![]),
                Some(arr) => arr
                    .as_arr()
                    .ok_or_else(|| SpecError::Malformed(format!("`{key}` must be an array")))?
                    .iter()
                    .map(|s| {
                        s.as_str().map(str::to_string).ok_or_else(|| {
                            SpecError::Malformed(format!("`{key}` entries must be strings"))
                        })
                    })
                    .collect(),
            }
        };

        let name = str_field(json, "name")?;
        let mut buffers = Vec::new();
        for b in arr_field(json, "buffers")? {
            buffers.push(BufferSpec {
                name: str_field(&b, "name")?,
                elements: u64_field(&b, "elements")? as usize,
            });
        }
        let mut kernels = Vec::new();
        for k in arr_field(json, "kernels")? {
            let f = |key: &str, default: f64| k.get(key).and_then(Json::as_f64).unwrap_or(default);
            let defaults = KernelTraits::default();
            let traits = KernelTraits {
                coalescing: f("coalescing", defaults.coalescing),
                branch_divergence: f("branch_divergence", defaults.branch_divergence),
                vector_friendliness: f("vector_friendliness", defaults.vector_friendliness),
                double_precision: k
                    .get("double_precision")
                    .and_then(Json::as_bool)
                    .unwrap_or(defaults.double_precision),
            };
            kernels.push(KernelSpec {
                name: str_field(&k, "name")?,
                cost: KernelCostSpec {
                    flops_per_item: f("flops_per_item", 0.0),
                    bytes_per_item: f("bytes_per_item", 0.0),
                    traits,
                },
            });
        }
        let mut steps = Vec::new();
        for (i, s) in arr_field(json, "steps")?.iter().enumerate() {
            let id = match s.get("id").and_then(Json::as_str) {
                Some(id) => id.to_string(),
                None => format!("s{i}"),
            };
            let op = match s.get("op").and_then(Json::as_str) {
                Some("write") => StepOp::Write { buffer: str_field(s, "buffer")? },
                Some("launch") => StepOp::Launch {
                    kernel: str_field(s, "kernel")?,
                    global: u64_field(s, "global")?,
                    local: u64_field(s, "local")?,
                    args: opt_strings(s, "args")?,
                },
                other => {
                    return Err(SpecError::Malformed(format!(
                        "step `{id}` has unknown op {other:?}"
                    )))
                }
            };
            steps.push(StepSpec { id, op, after: opt_strings(s, "after")? });
        }
        let out_of_order = json.get("out_of_order").and_then(Json::as_bool).unwrap_or(false);
        let splittable = json.get("splittable").and_then(Json::as_bool).unwrap_or(false);
        let spec = JobSpec { name, buffers, kernels, steps, out_of_order, splittable };
        spec.validate()?;
        Ok(spec)
    }

    /// Encode as JSON. `JobSpec::from_json(&spec.to_json())` round-trips.
    /// `out_of_order` is emitted only when set, so specs written before the
    /// flag existed encode byte-identically.
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "buffers",
                Json::Arr(
                    self.buffers
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("name", Json::from(b.name.as_str())),
                                ("elements", Json::from(b.elements)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "kernels",
                Json::Arr(
                    self.kernels
                        .iter()
                        .map(|k| {
                            Json::obj([
                                ("name", Json::from(k.name.as_str())),
                                ("flops_per_item", Json::from(k.cost.flops_per_item)),
                                ("bytes_per_item", Json::from(k.cost.bytes_per_item)),
                                ("coalescing", Json::from(k.cost.traits.coalescing)),
                                ("branch_divergence", Json::from(k.cost.traits.branch_divergence)),
                                (
                                    "vector_friendliness",
                                    Json::from(k.cost.traits.vector_friendliness),
                                ),
                                ("double_precision", Json::Bool(k.cost.traits.double_precision)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "steps",
                Json::Arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            let mut fields = vec![("id".to_string(), Json::from(s.id.as_str()))];
                            match &s.op {
                                StepOp::Write { buffer } => {
                                    fields.push(("op".into(), Json::from("write")));
                                    fields.push(("buffer".into(), Json::from(buffer.as_str())));
                                }
                                StepOp::Launch { kernel, global, local, args } => {
                                    fields.push(("op".into(), Json::from("launch")));
                                    fields.push(("kernel".into(), Json::from(kernel.as_str())));
                                    fields.push(("global".into(), Json::from(*global)));
                                    fields.push(("local".into(), Json::from(*local)));
                                    fields.push((
                                        "args".into(),
                                        Json::Arr(
                                            args.iter().map(|a| Json::from(a.as_str())).collect(),
                                        ),
                                    ));
                                }
                            }
                            if !s.after.is_empty() {
                                fields.push((
                                    "after".into(),
                                    Json::Arr(
                                        s.after.iter().map(|a| Json::from(a.as_str())).collect(),
                                    ),
                                ));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ]);
        if self.out_of_order {
            if let Json::Obj(fields) = &mut json {
                fields.push(("out_of_order".into(), Json::Bool(true)));
            }
        }
        if self.splittable {
            if let Json::Obj(fields) = &mut json {
                fields.push(("splittable".into(), Json::Bool(true)));
            }
        }
        json
    }

    /// Check internal consistency: unique names, resolvable references,
    /// consistent kernel arities, positive sizes, acyclic dependencies.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.out_of_order && self.splittable {
            return Err(SpecError::Invalid(
                "`out_of_order` and `splittable` are mutually exclusive".to_string(),
            ));
        }
        let mut buffer_names = std::collections::HashSet::new();
        for b in &self.buffers {
            if !buffer_names.insert(b.name.as_str()) {
                return Err(SpecError::Duplicate(b.name.clone()));
            }
            if b.elements == 0 {
                return Err(SpecError::Invalid(format!("buffer `{}` has zero elements", b.name)));
            }
        }
        let mut kernel_names = std::collections::HashSet::new();
        for k in &self.kernels {
            if buffer_names.contains(k.name.as_str()) || !kernel_names.insert(k.name.as_str()) {
                return Err(SpecError::Duplicate(k.name.clone()));
            }
        }
        let mut step_ids = std::collections::HashSet::new();
        for s in &self.steps {
            if !step_ids.insert(s.id.as_str()) {
                return Err(SpecError::Duplicate(s.id.clone()));
            }
        }
        let mut arities: HashMap<&str, usize> = HashMap::new();
        for s in &self.steps {
            match &s.op {
                StepOp::Write { buffer } => {
                    if !buffer_names.contains(buffer.as_str()) {
                        return Err(SpecError::UnknownRef {
                            step: s.id.clone(),
                            name: buffer.clone(),
                        });
                    }
                }
                StepOp::Launch { kernel, global, local, args } => {
                    if !kernel_names.contains(kernel.as_str()) {
                        return Err(SpecError::UnknownRef {
                            step: s.id.clone(),
                            name: kernel.clone(),
                        });
                    }
                    if *global == 0 || *local == 0 {
                        return Err(SpecError::Invalid(format!(
                            "step `{}` has zero launch geometry",
                            s.id
                        )));
                    }
                    for a in args {
                        if !buffer_names.contains(a.as_str()) {
                            return Err(SpecError::UnknownRef {
                                step: s.id.clone(),
                                name: a.clone(),
                            });
                        }
                    }
                    match arities.get(kernel.as_str()) {
                        Some(&n) if n != args.len() => {
                            return Err(SpecError::ArityMismatch(kernel.clone()))
                        }
                        _ => {
                            arities.insert(kernel.as_str(), args.len());
                        }
                    }
                }
            }
            for dep in &s.after {
                let resolvable = self.steps.iter().any(|t| t.id == *dep);
                if !resolvable {
                    return Err(SpecError::UnknownRef { step: s.id.clone(), name: dep.clone() });
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Total bytes of the job's buffers (`f64` elements) — the state a
    /// cross-shard migration must move for one in-flight job.
    pub fn buffer_bytes(&self) -> u64 {
        self.buffers.iter().map(|b| (b.elements as u64) * 8).sum()
    }

    /// Argument count per kernel, derived from launch steps (kernels never
    /// launched get arity 0).
    pub fn kernel_arities(&self) -> HashMap<String, usize> {
        let mut out: HashMap<String, usize> = HashMap::new();
        for s in &self.steps {
            if let StepOp::Launch { kernel, args, .. } = &s.op {
                out.insert(kernel.clone(), args.len());
            }
        }
        out
    }

    /// Step indices in a deterministic topological order: Kahn's algorithm
    /// that always emits the earliest-declared ready step next, so equal
    /// specs execute identical command streams.
    pub fn topo_order(&self) -> Result<Vec<usize>, SpecError> {
        let index_of: HashMap<&str, usize> =
            self.steps.iter().enumerate().map(|(i, s)| (s.id.as_str(), i)).collect();
        let n = self.steps.len();
        let mut emitted = vec![false; n];
        let mut order = Vec::with_capacity(n);
        while order.len() < n {
            let next = (0..n).find(|&i| {
                !emitted[i]
                    && self.steps[i]
                        .after
                        .iter()
                        .all(|dep| index_of.get(dep.as_str()).is_some_and(|&j| emitted[j]))
            });
            match next {
                Some(i) => {
                    emitted[i] = true;
                    order.push(i);
                }
                None => {
                    let stuck = (0..n).find(|&i| !emitted[i]).expect("order incomplete");
                    return Err(SpecError::Cycle(self.steps[stuck].id.clone()));
                }
            }
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSpec {
        JobSpec::parse_str(
            r#"{
              "name": "blur",
              "buffers": [{"name": "img", "elements": 1024}, {"name": "tmp", "elements": 1024}],
              "kernels": [
                {"name": "blur_h", "flops_per_item": 40.0, "bytes_per_item": 16.0,
                 "coalescing": 1.0, "branch_divergence": 0.0},
                {"name": "blur_v", "flops_per_item": 40.0, "bytes_per_item": 16.0}
              ],
              "steps": [
                {"id": "load", "op": "write", "buffer": "img"},
                {"id": "h", "op": "launch", "kernel": "blur_h", "global": 1024, "local": 64,
                 "args": ["img", "tmp"], "after": ["load"]},
                {"id": "v", "op": "launch", "kernel": "blur_v", "global": 1024, "local": 64,
                 "args": ["tmp", "img"], "after": ["h"]}
              ]
            }"#,
        )
        .expect("sample parses")
    }

    #[test]
    fn parses_and_roundtrips_through_json() {
        let spec = sample();
        assert_eq!(spec.buffers.len(), 2);
        assert_eq!(spec.kernels.len(), 2);
        assert_eq!(spec.steps.len(), 3);
        let again = JobSpec::from_json(&spec.to_json()).expect("round-trip parses");
        assert_eq!(again, spec);
        // And through text.
        let text = spec.to_json().dump();
        assert_eq!(JobSpec::parse_str(&text).unwrap(), spec);
    }

    #[test]
    fn topological_order_is_deterministic_and_respects_deps() {
        let spec = sample();
        let order = spec.topo_order().unwrap();
        assert_eq!(order, vec![0, 1, 2]);
        // Declaration order is preserved among unconstrained steps: declare
        // the dependent first and it still runs after its dependency.
        let mut reordered = spec.clone();
        reordered.steps.swap(0, 1);
        let order = reordered.topo_order().unwrap();
        let pos = |id: &str| order.iter().position(|&i| reordered.steps[i].id == id).unwrap();
        assert!(pos("load") < pos("h"));
        assert!(pos("h") < pos("v"));
    }

    #[test]
    fn out_of_order_flag_parses_and_roundtrips() {
        // Absent ⇒ false, and a false flag is not emitted (old specs encode
        // byte-identically).
        let spec = sample();
        assert!(!spec.out_of_order);
        assert!(spec.to_json().get("out_of_order").is_none());

        let mut flagged = sample();
        flagged.out_of_order = true;
        let json = flagged.to_json();
        assert_eq!(json.get("out_of_order").and_then(Json::as_bool), Some(true));
        let again = JobSpec::from_json(&json).expect("flagged spec parses");
        assert_eq!(again, flagged);
    }

    #[test]
    fn splittable_flag_parses_roundtrips_and_excludes_out_of_order() {
        // Absent ⇒ false, and a false flag is not emitted (old specs encode
        // byte-identically).
        let spec = sample();
        assert!(!spec.splittable);
        assert!(spec.to_json().get("splittable").is_none());

        let mut flagged = sample();
        flagged.splittable = true;
        let json = flagged.to_json();
        assert_eq!(json.get("splittable").and_then(Json::as_bool), Some(true));
        let again = JobSpec::from_json(&json).expect("flagged spec parses");
        assert_eq!(again, flagged);

        // The two queue-flag opt-ins are mutually exclusive, like the
        // underlying `SCHED_SPLITTABLE` × `SCHED_OUT_OF_ORDER` flags.
        let mut both = sample();
        both.splittable = true;
        both.out_of_order = true;
        assert!(matches!(both.validate(), Err(SpecError::Invalid(_))));
        assert!(JobSpec::from_json(&both.to_json()).is_err());
    }

    #[test]
    fn rejects_unknown_references() {
        let mut spec = sample();
        spec.steps[0] = StepSpec {
            id: "load".into(),
            op: StepOp::Write { buffer: "nope".into() },
            after: vec![],
        };
        assert!(matches!(spec.validate(), Err(SpecError::UnknownRef { .. })));

        let mut spec = sample();
        spec.steps[1].after = vec!["ghost".into()];
        assert!(matches!(spec.validate(), Err(SpecError::UnknownRef { .. })));
    }

    #[test]
    fn rejects_cycles_duplicates_and_zero_sizes() {
        let mut spec = sample();
        spec.steps[1].after = vec!["v".into()]; // h ← v and v ← h
        assert!(matches!(spec.validate(), Err(SpecError::Cycle(_))));

        let mut spec = sample();
        spec.buffers[1].name = "img".into();
        assert!(matches!(spec.validate(), Err(SpecError::Duplicate(_))));

        let mut spec = sample();
        spec.buffers[0].elements = 0;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn rejects_inconsistent_kernel_arity() {
        let mut spec = sample();
        spec.steps.push(StepSpec {
            id: "again".into(),
            op: StepOp::Launch {
                kernel: "blur_h".into(),
                global: 64,
                local: 64,
                args: vec!["img".into()], // blur_h elsewhere takes 2 args
            },
            after: vec![],
        });
        assert!(matches!(spec.validate(), Err(SpecError::ArityMismatch(_))));
    }

    #[test]
    fn malformed_json_reports_the_field() {
        let err = JobSpec::parse_str(r#"{"name": "x"}"#).unwrap_err();
        assert!(matches!(err, SpecError::Malformed(_)));
        assert!(err.to_string().contains("buffers"), "{err}");
        assert!(JobSpec::parse_str("not json").is_err());
    }
}

//! Seeded load generator for the `served` job service.
//!
//! Submits a deterministic stream of job-spec jobs from N tenants against
//! the MultiCL scheduler (virtual time — runs offline in milliseconds) and
//! writes, under `results/`:
//!
//! * `serve_loadgen_<policy>_seed<seed>.json` — per-tenant throughput,
//!   rejection counts, and p50/p95/p99 job latency,
//! * `serve_loadgen_<policy>_seed<seed>.prom` — the combined service
//!   metrics in Prometheus text exposition,
//! * `serve_events_<policy>_seed<seed>.jsonl` — the job-lifecycle +
//!   scheduler event stream,
//! * `serve_trace_seed<seed>.jsonl` — the arrival trace (open loop only;
//!   replayable with `serve_replay`).
//!
//! Usage:
//! `cargo run -p served --bin loadgen -- --seed 42 --tenants 4 --policy auto_fit`
//! Flags: `--seed N --tenants N --policy auto_fit|round_robin|off --jobs N`
//! `--rate HZ --mode open|closed --workers N --capacity N --think-ms N`
//! `--concurrency N --data-workers N` (data-plane host threads; 0 = all
//! cores, 1 = synchronous — changes wall-clock throughput only, never the
//! virtual timeline or results).

use hwsim::SimDuration;
use multicl::telemetry::RingBufferSink;
use served::loadgen::{self, ArrivalMode, LoadgenConfig};
use served::ServePolicy;
use std::path::PathBuf;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--seed N] [--tenants N] [--policy auto_fit|round_robin|off] \
         [--jobs N] [--rate HZ] [--mode open|closed] [--workers N] [--capacity N] \
         [--think-ms N] [--concurrency N] [--data-workers N]\n\
         run `loadgen --help` for flag documentation"
    );
    std::process::exit(2);
}

fn help() -> ! {
    println!(
        "loadgen — seeded load generator for the served job service (virtual time)\n\
         \n\
         usage: loadgen [flags]\n\
         \n\
         flags:\n\
         \x20 --seed N          arrival-process seed (default 42); same seed, same results\n\
         \x20 --tenants N       number of tenants (default 4)\n\
         \x20 --policy P        backend policy: auto_fit | round_robin | off (default auto_fit)\n\
         \x20 --jobs N          total jobs to submit (default 48)\n\
         \x20 --rate HZ         open-loop offered arrival rate, virtual jobs/s (default 400)\n\
         \x20 --mode M          arrival process: open (Poisson) | closed (default open)\n\
         \x20 --workers N       scheduler dispatch queues (default 4)\n\
         \x20 --capacity N      per-tenant admission queue bound (default 8)\n\
         \x20 --think-ms N      closed-loop think time per client, virtual ms (default 2)\n\
         \x20 --concurrency N   closed-loop clients per tenant (default 2)\n\
         \x20 --data-workers N  data-plane host threads executing kernel bodies and\n\
         \x20                   transfers: 0 = one per core (default), 1 = synchronous.\n\
         \x20                   Changes wall-clock throughput only — the virtual timeline,\n\
         \x20                   reports, and event stream are identical for any value\n\
         \n\
         outputs (under results/):\n\
         \x20 serve_loadgen_<policy>_seed<seed>.json   per-tenant report\n\
         \x20 serve_loadgen_<policy>_seed<seed>.prom   Prometheus metrics\n\
         \x20 serve_events_<policy>_seed<seed>.jsonl   job-lifecycle + scheduler events\n\
         \x20 serve_trace_seed<seed>.jsonl             arrival trace (open loop only);\n\
         \x20                                          feed it back with serve_replay"
    );
    std::process::exit(0);
}

fn parse_config() -> LoadgenConfig {
    let mut cfg = LoadgenConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        let num = |v: Option<&String>| -> u64 {
            v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--help" | "-h" => help(),
            "--seed" => cfg.seed = num(value),
            "--tenants" => cfg.tenants = num(value) as usize,
            "--jobs" => cfg.jobs = num(value) as usize,
            "--workers" => cfg.workers = num(value) as usize,
            "--capacity" => cfg.queue_capacity = num(value) as usize,
            "--think-ms" => cfg.think = SimDuration::from_millis(num(value)),
            "--concurrency" => cfg.concurrency = num(value) as usize,
            "--data-workers" => cfg.runtime.data_plane_workers = num(value) as usize,
            "--rate" => {
                cfg.rate_hz = value.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--policy" => {
                cfg.policy = value.and_then(|s| ServePolicy::parse(s)).unwrap_or_else(|| usage());
            }
            "--mode" => {
                cfg.mode = value.and_then(|s| ArrivalMode::parse(s)).unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 2;
    }
    cfg
}

fn write_results(name: &str, contents: &str) {
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() {
    let cfg = parse_config();
    let cache_dir = std::env::temp_dir().join("served-profile-cache");
    let recorder = Arc::new(RingBufferSink::new(1 << 16));
    let (served, arrivals) = loadgen::run_with(&cfg, &cache_dir, vec![recorder.clone()])
        .unwrap_or_else(|e| {
            eprintln!("error: load generation failed: {e}");
            std::process::exit(1);
        });

    let report = loadgen::report_json_with_wall(&served, &cfg);
    println!(
        "{} tenants, {} jobs, policy {}, mode {}: {} completed / {} rejected in {:.2} virtual ms",
        cfg.tenants,
        cfg.jobs,
        cfg.policy,
        cfg.mode.label(),
        report.get("jobs_completed").and_then(|v| v.as_u64()).unwrap_or(0),
        report.get("jobs_rejected").and_then(|v| v.as_u64()).unwrap_or(0),
        served.now().as_millis_f64(),
    );
    println!(
        "data plane: {} worker(s), {:.0} wall-clock jobs/s",
        served.data_plane_workers(),
        report.get("wall_jobs_per_s").and_then(|v| v.as_f64()).unwrap_or(0.0),
    );
    for i in 0..served.tenant_count() {
        let (p50, p95, p99) = served.metrics().latency_percentiles_ms(i);
        println!(
            "  {}: completed {:>4}  rejected {:>3}  starved {:>3}  p50 {:>8.3}ms  p95 {:>8.3}ms  p99 {:>8.3}ms",
            served.tenant_name(i),
            served.metrics().tenant(i).completed.get(),
            served.metrics().tenant(i).rejected.get(),
            served.starvation_rounds(i),
            p50,
            p95,
            p99,
        );
    }

    let stem = format!("serve_loadgen_{}_seed{}", cfg.policy.label(), cfg.seed);
    write_results(&format!("{stem}.json"), &report.dump());
    write_results(&format!("{stem}.prom"), &served.metrics().registry().to_prometheus());
    let events: String = recorder.snapshot().iter().map(|e| e.to_json().dump() + "\n").collect();
    write_results(&format!("serve_events_{}_seed{}.jsonl", cfg.policy.label(), cfg.seed), &events);
    if cfg.mode == ArrivalMode::Open {
        write_results(
            &format!("serve_trace_seed{}.jsonl", cfg.seed),
            &loadgen::trace_lines(&arrivals),
        );
    }
}

//! Replay a recorded arrival trace against the job service.
//!
//! Reads a JSONL trace written by the `loadgen` binary
//! (`results/serve_trace_seed<seed>.jsonl`), re-submits the exact same
//! jobs at the exact same virtual times, and writes
//! `results/serve_replay_<policy>.json` — useful for A/B-ing scheduler
//! policies over one fixed workload.
//!
//! Usage:
//! `cargo run -p served --bin serve_replay -- results/serve_trace_seed42.jsonl \
//!   [--policy auto_fit|round_robin|off] [--tenants N] [--workers N] [--capacity N] \
//!   [--data-workers N]`

use served::loadgen::{self, ArrivalMode, LoadgenConfig};
use served::ServePolicy;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: serve_replay <trace.jsonl> [--policy auto_fit|round_robin|off] \
         [--tenants N] [--workers N] [--capacity N] [--data-workers N]\n\
         run `serve_replay --help` for flag documentation"
    );
    std::process::exit(2);
}

fn help() -> ! {
    println!(
        "serve_replay — re-run a recorded arrival trace against the job service\n\
         \n\
         usage: serve_replay <trace.jsonl> [flags]\n\
         \n\
         input:\n\
         \x20 <trace.jsonl>     an arrival trace written by the loadgen binary in open\n\
         \x20                   loop (results/serve_trace_seed<seed>.jsonl): one JSON\n\
         \x20                   object per line with the virtual arrival time, tenant\n\
         \x20                   index, and full job spec. The same trace replayed under\n\
         \x20                   different --policy values A/Bs the scheduler over one\n\
         \x20                   fixed workload\n\
         \n\
         flags:\n\
         \x20 --policy P        backend policy: auto_fit | round_robin | off (default auto_fit)\n\
         \x20 --tenants N       tenant slots (raised automatically to the trace's max index)\n\
         \x20 --workers N       scheduler dispatch queues (default 4)\n\
         \x20 --capacity N      per-tenant admission queue bound (default 8)\n\
         \x20 --data-workers N  data-plane host threads executing kernel bodies and\n\
         \x20                   transfers: 0 = one per core (default), 1 = synchronous.\n\
         \x20                   Changes wall-clock throughput only, never the virtual\n\
         \x20                   timeline or the report\n\
         \n\
         output: results/serve_replay_<policy>.json"
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args.first().unwrap_or_else(|| usage());
    if path == "--help" || path == "-h" {
        help();
    }
    if path.starts_with("--") {
        usage();
    }
    let mut cfg = LoadgenConfig { mode: ArrivalMode::Open, ..LoadgenConfig::default() };
    let mut i = 1;
    while i < args.len() {
        let value = args.get(i + 1);
        let num = |v: Option<&String>| -> usize {
            v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--policy" => {
                cfg.policy = value.and_then(|s| ServePolicy::parse(s)).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => help(),
            "--tenants" => cfg.tenants = num(value),
            "--workers" => cfg.workers = num(value),
            "--capacity" => cfg.queue_capacity = num(value),
            "--data-workers" => cfg.runtime.data_plane_workers = num(value),
            _ => usage(),
        }
        i += 2;
    }

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let arrivals = loadgen::parse_trace(&text).unwrap_or_else(|| {
        eprintln!("error: {path} is not a serve trace (JSONL of arrivals)");
        std::process::exit(1);
    });
    // The service needs one tenant slot per index the trace references.
    let max_tenant = arrivals.iter().map(|a| a.tenant).max().unwrap_or(0);
    cfg.tenants = cfg.tenants.max(max_tenant + 1);

    let cache_dir = std::env::temp_dir().join("served-profile-cache");
    let served = loadgen::build_service(&cfg, &cache_dir, Vec::new()).unwrap_or_else(|e| {
        eprintln!("error: service creation failed: {e}");
        std::process::exit(1);
    });
    let specs: Vec<_> = arrivals.iter().map(|a| a.spec.clone()).collect();
    served.warm_programs(&specs).unwrap_or_else(|e| {
        eprintln!("error: program warm-up failed: {e}");
        std::process::exit(1);
    });
    loadgen::drive_open(&served, &arrivals);

    let report = loadgen::report_json(&served, &cfg);
    println!(
        "replayed {} arrival(s) from {path} under {}: {} completed / {} rejected in {:.2} virtual ms",
        arrivals.len(),
        cfg.policy,
        report.get("jobs_completed").and_then(|v| v.as_u64()).unwrap_or(0),
        report.get("jobs_rejected").and_then(|v| v.as_u64()).unwrap_or(0),
        served.now().as_millis_f64(),
    );

    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let out = dir.join(format!("serve_replay_{}.json", cfg.policy.label()));
    match std::fs::write(&out, report.dump()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }
}

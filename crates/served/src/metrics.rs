//! Per-tenant service metrics, registered in the scheduler's
//! [`MetricsRegistry`] so one Prometheus/JSON export covers both the
//! scheduler and the serving layer.
//!
//! The registry has no label support (it is the workspace's offline
//! Prometheus stand-in), so tenant metrics embed a sanitized tenant name:
//! `served_t0_jobs_completed_total`. Exact job latencies are additionally
//! kept per tenant so reports can quote precise p50/p95/p99 (the registry
//! histograms are log-bucketed).

use hwsim::stats;
use hwsim::sync::Mutex;
use hwsim::SimDuration;
use multicl::telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// The metric handles of one tenant.
pub struct TenantMetrics {
    /// Jobs submitted (admitted + rejected).
    pub submitted: Counter,
    /// Jobs admitted into the tenant queue.
    pub admitted: Counter,
    /// Jobs rejected by admission control.
    pub rejected: Counter,
    /// Jobs handed to a scheduler queue.
    pub dispatched: Counter,
    /// Jobs fully executed.
    pub completed: Counter,
    /// Jobs abandoned (deadline missed, retries exhausted, or no healthy
    /// device).
    pub failed: Counter,
    /// Fault-failed dispatches re-queued for another attempt.
    pub retried: Counter,
    /// Current admitted-but-undispatched queue depth.
    pub depth: Gauge,
    /// Rounds where the tenant had backlog but got no dispatch slot.
    pub starved_rounds: Counter,
    /// Submission-to-completion latency (virtual nanoseconds, log buckets).
    pub latency_ns: Histogram,
}

/// Metrics for the whole service: a shared registry plus per-tenant handles
/// and exact latency samples.
pub struct ServiceMetrics {
    registry: MetricsRegistry,
    tenants: Vec<TenantMetrics>,
    /// Exact per-tenant job latencies in virtual milliseconds.
    latencies_ms: Vec<Mutex<Vec<f64>>>,
}

/// Make a tenant name safe for Prometheus metric names.
fn sanitize(name: &str) -> String {
    let mut out: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 't');
    }
    out
}

impl ServiceMetrics {
    /// Create the metric set for the given tenant names.
    pub fn new(tenant_names: &[String]) -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        let tenants = tenant_names
            .iter()
            .map(|name| {
                let p = format!("served_{}", sanitize(name));
                TenantMetrics {
                    submitted: registry
                        .counter(&format!("{p}_jobs_submitted_total"), "jobs submitted"),
                    admitted: registry
                        .counter(&format!("{p}_jobs_admitted_total"), "jobs admitted"),
                    rejected: registry
                        .counter(&format!("{p}_jobs_rejected_total"), "jobs rejected"),
                    dispatched: registry
                        .counter(&format!("{p}_jobs_dispatched_total"), "jobs dispatched"),
                    completed: registry
                        .counter(&format!("{p}_jobs_completed_total"), "jobs completed"),
                    failed: registry.counter(
                        &format!("{p}_jobs_failed_total"),
                        "jobs abandoned (deadline, retries, or dead node)",
                    ),
                    retried: registry.counter(
                        &format!("{p}_jobs_retried_total"),
                        "fault-failed dispatch retries",
                    ),
                    depth: registry.gauge(&format!("{p}_queue_depth"), "tenant queue depth"),
                    starved_rounds: registry.counter(
                        &format!("{p}_starved_rounds_total"),
                        "rounds with backlog but no dispatch slot",
                    ),
                    latency_ns: registry.histogram(
                        &format!("{p}_job_latency_ns"),
                        "submission-to-completion virtual latency",
                    ),
                }
            })
            .collect();
        let latencies_ms = tenant_names.iter().map(|_| Mutex::new(Vec::new())).collect();
        ServiceMetrics { registry, tenants, latencies_ms }
    }

    /// The shared registry (exportable as Prometheus text or JSON).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Metric handles of tenant `i`.
    pub fn tenant(&self, i: usize) -> &TenantMetrics {
        &self.tenants[i]
    }

    /// Record one completed-job latency for tenant `i`.
    pub fn record_latency(&self, i: usize, latency: SimDuration) {
        self.tenants[i].latency_ns.observe(latency.as_nanos());
        self.latencies_ms[i].lock().push(latency.as_millis_f64());
    }

    /// Exact latency samples (virtual ms) of tenant `i`, submission order.
    pub fn latencies_ms(&self, i: usize) -> Vec<f64> {
        self.latencies_ms[i].lock().clone()
    }

    /// `(p50, p95, p99)` job latency of tenant `i`, virtual ms.
    pub fn latency_percentiles_ms(&self, i: usize) -> (f64, f64, f64) {
        // Snapshot under the lock, compute outside it: the percentile scan
        // sorts O(n log n), which must not serialize concurrent recorders.
        let samples = self.latencies_ms[i].lock().clone();
        stats::latency_percentiles(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_produces_prometheus_safe_names() {
        assert_eq!(sanitize("t0"), "t0");
        assert_eq!(sanitize("team a/b"), "team_a_b");
        assert_eq!(sanitize("0day"), "t0day");
        assert_eq!(sanitize(""), "t");
    }

    #[test]
    fn per_tenant_metrics_appear_in_the_export() {
        let m = ServiceMetrics::new(&["t0".into(), "t1".into()]);
        m.tenant(0).submitted.inc();
        m.tenant(0).admitted.inc();
        m.record_latency(0, SimDuration::from_millis(4));
        m.record_latency(0, SimDuration::from_millis(8));
        let prom = m.registry().to_prometheus();
        assert!(prom.contains("served_t0_jobs_submitted_total 1"), "{prom}");
        assert!(prom.contains("served_t1_jobs_submitted_total 0"), "{prom}");
        assert!(prom.contains("served_t0_job_latency_ns"), "{prom}");
        let (p50, p95, p99) = m.latency_percentiles_ms(0);
        assert!(p50 >= 4.0 && p99 <= 8.0 && p50 <= p95 && p95 <= p99);
        assert_eq!(m.latencies_ms(1), Vec::<f64>::new());
    }
}

//! Per-tenant service metrics, registered in the scheduler's
//! [`MetricsRegistry`] so one Prometheus/JSON export covers both the
//! scheduler and the serving layer.
//!
//! Tenant identity is carried as a real Prometheus label
//! (`served_jobs_completed_total{tenant="team a/b"}`): the registry
//! escapes label values on exposition, so hostile tenant names (quotes,
//! backslashes, newlines) cannot corrupt the text format. Exact job
//! latencies are additionally kept per tenant so reports can quote precise
//! p50/p95/p99 (the registry histograms are log-bucketed).

use hwsim::stats;
use hwsim::sync::Mutex;
use hwsim::SimDuration;
use multicl::telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// The metric handles of one tenant.
pub struct TenantMetrics {
    /// Jobs submitted (admitted + rejected).
    pub submitted: Counter,
    /// Jobs admitted into the tenant queue.
    pub admitted: Counter,
    /// Jobs rejected by admission control.
    pub rejected: Counter,
    /// Jobs handed to a scheduler queue.
    pub dispatched: Counter,
    /// Jobs fully executed.
    pub completed: Counter,
    /// Jobs abandoned (deadline missed, retries exhausted, or no healthy
    /// device).
    pub failed: Counter,
    /// Fault-failed dispatches re-queued for another attempt.
    pub retried: Counter,
    /// Current admitted-but-undispatched queue depth.
    pub depth: Gauge,
    /// Rounds where the tenant had backlog but got no dispatch slot.
    pub starved_rounds: Counter,
    /// Submission-to-completion latency (virtual nanoseconds, log buckets).
    pub latency_ns: Histogram,
    /// SLO burn-rate alerts fired (transitions into the firing state).
    pub slo_alerts: Counter,
    /// Latency of the tenant's *first* completed job (virtual
    /// nanoseconds). The cold-start indicator: under a profiling-based
    /// scheduler this row absorbs the one-time profiling epochs; with the
    /// cost predictor warm it should match steady-state latency. Set once,
    /// `0` until the first completion.
    pub first_job_latency_ns: Gauge,
}

/// Metrics for the whole service: a shared registry plus per-tenant handles
/// and exact latency samples.
pub struct ServiceMetrics {
    registry: MetricsRegistry,
    tenants: Vec<TenantMetrics>,
    /// Exact per-tenant job latencies in virtual milliseconds.
    latencies_ms: Vec<Mutex<Vec<f64>>>,
    /// Start-up warm-up instances skipped because the cost predictor was
    /// already confident about every launch in the template (service-wide,
    /// not per tenant — warm-up runs before tenants submit anything).
    pub warmups_skipped: Counter,
}

impl ServiceMetrics {
    /// Create the metric set for the given tenant names. Each tenant's
    /// series share the metric name and differ in the `tenant` label.
    pub fn new(tenant_names: &[String]) -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        let tenants = tenant_names
            .iter()
            .map(|name| {
                let labels: &[(&str, &str)] = &[("tenant", name.as_str())];
                TenantMetrics {
                    submitted: registry.counter_with(
                        "served_jobs_submitted_total",
                        "jobs submitted",
                        labels,
                    ),
                    admitted: registry.counter_with(
                        "served_jobs_admitted_total",
                        "jobs admitted",
                        labels,
                    ),
                    rejected: registry.counter_with(
                        "served_jobs_rejected_total",
                        "jobs rejected",
                        labels,
                    ),
                    dispatched: registry.counter_with(
                        "served_jobs_dispatched_total",
                        "jobs dispatched",
                        labels,
                    ),
                    completed: registry.counter_with(
                        "served_jobs_completed_total",
                        "jobs completed",
                        labels,
                    ),
                    failed: registry.counter_with(
                        "served_jobs_failed_total",
                        "jobs abandoned (deadline, retries, or dead node)",
                        labels,
                    ),
                    retried: registry.counter_with(
                        "served_jobs_retried_total",
                        "fault-failed dispatch retries",
                        labels,
                    ),
                    depth: registry.gauge_with("served_queue_depth", "tenant queue depth", labels),
                    starved_rounds: registry.counter_with(
                        "served_starved_rounds_total",
                        "rounds with backlog but no dispatch slot",
                        labels,
                    ),
                    latency_ns: registry.histogram_with(
                        "served_job_latency_ns",
                        "submission-to-completion virtual latency",
                        labels,
                    ),
                    slo_alerts: registry.counter_with(
                        "served_slo_alerts_total",
                        "SLO burn-rate alerts fired",
                        labels,
                    ),
                    first_job_latency_ns: registry.gauge_with(
                        "served_first_job_latency_ns",
                        "latency of the tenant's first completed job (cold start)",
                        labels,
                    ),
                }
            })
            .collect();
        let latencies_ms = tenant_names.iter().map(|_| Mutex::new(Vec::new())).collect();
        let warmups_skipped = registry.counter(
            "served_warmups_skipped_total",
            "start-up warm-up instances skipped (predictor confident)",
        );
        ServiceMetrics { registry, tenants, latencies_ms, warmups_skipped }
    }

    /// The shared registry (exportable as Prometheus text or JSON).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Metric handles of tenant `i`.
    pub fn tenant(&self, i: usize) -> &TenantMetrics {
        &self.tenants[i]
    }

    /// Record one completed-job latency for tenant `i`. The first sample
    /// also pins [`TenantMetrics::first_job_latency_ns`], the tenant's
    /// cold-start latency.
    pub fn record_latency(&self, i: usize, latency: SimDuration) {
        self.tenants[i].latency_ns.observe(latency.as_nanos());
        let mut samples = self.latencies_ms[i].lock();
        if samples.is_empty() {
            self.tenants[i].first_job_latency_ns.set(latency.as_nanos() as f64);
        }
        samples.push(latency.as_millis_f64());
    }

    /// Exact latency samples (virtual ms) of tenant `i`, submission order.
    pub fn latencies_ms(&self, i: usize) -> Vec<f64> {
        self.latencies_ms[i].lock().clone()
    }

    /// `(p50, p95, p99)` job latency of tenant `i`, virtual ms.
    pub fn latency_percentiles_ms(&self, i: usize) -> (f64, f64, f64) {
        // Snapshot under the lock, compute outside it: the percentile scan
        // sorts O(n log n), which must not serialize concurrent recorders.
        let samples = self.latencies_ms[i].lock().clone();
        stats::latency_percentiles(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tenant_metrics_appear_as_labeled_series() {
        let m = ServiceMetrics::new(&["t0".into(), "t1".into()]);
        m.tenant(0).submitted.inc();
        m.tenant(0).admitted.inc();
        m.record_latency(0, SimDuration::from_millis(4));
        m.record_latency(0, SimDuration::from_millis(8));
        let prom = m.registry().to_prometheus();
        assert!(prom.contains(r#"served_jobs_submitted_total{tenant="t0"} 1"#), "{prom}");
        assert!(prom.contains(r#"served_jobs_submitted_total{tenant="t1"} 0"#), "{prom}");
        assert!(prom.contains(r#"served_job_latency_ns_count{tenant="t0"}"#), "{prom}");
        // First-job latency is pinned by the first sample and never moves.
        let first = SimDuration::from_millis(4).as_nanos() as f64;
        assert!(prom.contains(&format!(r#"served_first_job_latency_ns{{tenant="t0"}} {first}"#)));
        assert!(prom.contains(r#"served_first_job_latency_ns{tenant="t1"} 0"#), "{prom}");
        let (p50, p95, p99) = m.latency_percentiles_ms(0);
        assert!(p50 >= 4.0 && p99 <= 8.0 && p50 <= p95 && p95 <= p99);
        assert_eq!(m.latencies_ms(1), Vec::<f64>::new());
    }

    #[test]
    fn hostile_tenant_names_survive_exposition_and_reparse() {
        let hostile = "team \"a\"\\b\nc".to_string();
        let m = ServiceMetrics::new(std::slice::from_ref(&hostile));
        m.tenant(0).submitted.inc();
        let prom = m.registry().to_prometheus();
        // No raw newline inside a sample line, and the text re-parses.
        for line in prom.lines() {
            assert!(!line.is_empty() || line.trim().is_empty());
        }
        let samples = multicl::telemetry::registry::parse_prometheus(&prom).expect("parseable");
        let s = samples
            .iter()
            .find(|s| s.name == "served_jobs_submitted_total")
            .expect("series present");
        assert_eq!(s.labels, vec![("tenant".to_string(), hostile)]);
        assert_eq!(s.value, 1.0);
    }
}

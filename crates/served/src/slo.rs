//! Per-tenant latency SLOs with multi-window burn-rate alerting.
//!
//! A tenant's SLO says: at least `objective` of its jobs should finish —
//! successfully — within `latency_target`. Every terminal outcome is a
//! good or bad event; the *burn rate* over a trailing window is the
//! observed bad fraction divided by the error budget `1 − objective`
//! (burn 1.0 = exactly consuming budget at the sustainable rate).
//!
//! Alerting follows the standard multi-window pattern: an alert fires only
//! when **both** a long window and a short window exceed the threshold —
//! the long window gives significance, the short one proves the burn is
//! still happening (so alerts clear promptly once the problem stops).
//! State *transitions* are emitted as [`SchedEvent::SloBurn`] events
//! (`fired` marks the direction), so a JSONL trace carries the alert
//! timeline without per-round spam.
//!
//! Everything is virtual-time arithmetic over recorded outcomes — same
//! seed, bit-identical alert timeline.

use multicl::telemetry::SchedEvent;
use std::collections::VecDeque;

use hwsim::{SimDuration, SimTime};

/// One alerting rule: a long significance window, a short recency window,
/// and the burn-rate threshold both must exceed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnWindow {
    /// Long (significance) window.
    pub long: SimDuration,
    /// Short (recency) window.
    pub short: SimDuration,
    /// Burn-rate threshold (1.0 = budget consumed exactly on schedule).
    pub threshold: f64,
}

/// A tenant latency SLO plus its alerting rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// A job is *good* iff it completes successfully within this latency.
    pub latency_target: SimDuration,
    /// Target good fraction (e.g. `0.95`); the error budget is
    /// `1 − objective`.
    pub objective: f64,
    /// Alerting rules, evaluated independently per tenant.
    pub windows: Vec<BurnWindow>,
}

impl Default for SloConfig {
    /// A serving-scale default: 95% of jobs within 50 virtual ms, with a
    /// fast-burn rule (short windows, high threshold) and a slow-burn rule
    /// (long windows, low threshold) — the classic paired-alert setup.
    fn default() -> SloConfig {
        SloConfig {
            latency_target: SimDuration::from_millis(50),
            objective: 0.95,
            windows: vec![
                BurnWindow {
                    long: SimDuration::from_millis(500),
                    short: SimDuration::from_millis(50),
                    threshold: 10.0,
                },
                BurnWindow {
                    long: SimDuration::from_millis(2_000),
                    short: SimDuration::from_millis(250),
                    threshold: 2.0,
                },
            ],
        }
    }
}

impl SloConfig {
    /// Error budget `1 − objective`, floored away from zero so the burn
    /// ratio stays finite for degenerate objectives.
    fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// A fired/cleared transition produced by [`SloTracker::evaluate`], ready
/// to be wrapped in a [`SchedEvent::SloBurn`].
#[derive(Debug, Clone, PartialEq)]
pub struct BurnTransition {
    /// Tenant index the transition belongs to.
    pub tenant: usize,
    /// The rule that transitioned.
    pub window: BurnWindow,
    /// Burn rate over the long window at evaluation time.
    pub long_burn: f64,
    /// Burn rate over the short window at evaluation time.
    pub short_burn: f64,
    /// New state: `true` = alert now firing, `false` = cleared.
    pub fired: bool,
}

impl BurnTransition {
    /// The telemetry event for this transition.
    pub fn to_event(&self, epoch: u64, tenant: String, at: SimTime) -> SchedEvent {
        SchedEvent::SloBurn {
            epoch,
            tenant,
            at,
            long_window: self.window.long,
            short_window: self.window.short,
            long_burn: self.long_burn,
            short_burn: self.short_burn,
            threshold: self.window.threshold,
            fired: self.fired,
        }
    }
}

/// Per-tenant outcome history and alert state.
pub struct SloTracker {
    config: SloConfig,
    /// `(at, bad)` terminal outcomes per tenant, oldest first, pruned past
    /// the longest configured window.
    history: Vec<VecDeque<(SimTime, bool)>>,
    /// Current firing state per `(tenant, rule)`.
    fired: Vec<Vec<bool>>,
}

impl SloTracker {
    /// A tracker for `tenants` tenants under `config`.
    pub fn new(config: SloConfig, tenants: usize) -> SloTracker {
        let rules = config.windows.len();
        SloTracker {
            config,
            history: (0..tenants).map(|_| VecDeque::new()).collect(),
            fired: (0..tenants).map(|_| vec![false; rules]).collect(),
        }
    }

    /// The configured SLO.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Whether a completed job with `latency` counts against the budget.
    pub fn is_bad_latency(&self, latency: SimDuration) -> bool {
        latency > self.config.latency_target
    }

    /// Record one terminal outcome (`bad` = failed, or completed over
    /// target) for `tenant` at virtual time `at`.
    pub fn record(&mut self, tenant: usize, at: SimTime, bad: bool) {
        let history = &mut self.history[tenant];
        history.push_back((at, bad));
        let horizon = self
            .config
            .windows
            .iter()
            .map(|w| w.long.max(w.short))
            .max()
            .unwrap_or(SimDuration::ZERO);
        let cutoff = at.as_nanos().saturating_sub(horizon.as_nanos());
        while history.front().is_some_and(|&(t, _)| t.as_nanos() < cutoff) {
            history.pop_front();
        }
    }

    /// Burn rate of `tenant` over the trailing `window` ending at `now`:
    /// bad fraction over the error budget; `0.0` with no samples.
    pub fn burn_rate(&self, tenant: usize, now: SimTime, window: SimDuration) -> f64 {
        let from = now.as_nanos().saturating_sub(window.as_nanos());
        let mut total = 0u64;
        let mut bad = 0u64;
        for &(t, is_bad) in &self.history[tenant] {
            if t.as_nanos() >= from {
                total += 1;
                bad += u64::from(is_bad);
            }
        }
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.config.budget()
    }

    /// Re-evaluate every rule for `tenant` at `now`; returns the state
    /// transitions (empty when nothing changed).
    pub fn evaluate(&mut self, tenant: usize, now: SimTime) -> Vec<BurnTransition> {
        let mut transitions = Vec::new();
        for (i, &window) in self.config.windows.clone().iter().enumerate() {
            let long_burn = self.burn_rate(tenant, now, window.long);
            let short_burn = self.burn_rate(tenant, now, window.short);
            let firing = long_burn >= window.threshold && short_burn >= window.threshold;
            if firing != self.fired[tenant][i] {
                self.fired[tenant][i] = firing;
                transitions.push(BurnTransition {
                    tenant,
                    window,
                    long_burn,
                    short_burn,
                    fired: firing,
                });
            }
        }
        transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1_000_000)
    }

    fn config() -> SloConfig {
        SloConfig {
            latency_target: ms(10),
            objective: 0.9, // budget 0.1
            windows: vec![BurnWindow { long: ms(100), short: ms(20), threshold: 2.0 }],
        }
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let mut t = SloTracker::new(config(), 1);
        t.record(0, at(1), false);
        t.record(0, at(2), false);
        t.record(0, at(3), true);
        t.record(0, at(4), true);
        // 2 bad of 4 → 0.5 / 0.1 budget = 5x.
        assert!((t.burn_rate(0, at(4), ms(100)) - 5.0).abs() < 1e-12);
        // Zero-width window sees only t=4 (bad): 1.0 / 0.1 budget = 10x.
        assert!((t.burn_rate(0, at(4), SimDuration::ZERO) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn alert_fires_only_when_both_windows_burn_and_clears_after() {
        let mut t = SloTracker::new(config(), 1);
        // Old burst of bad outcomes: long window sees them, short not.
        for i in 1..=4 {
            t.record(0, at(i), true);
        }
        // 30ms later the short window is clean — no alert.
        for i in 0..4 {
            t.record(0, at(34 + i), false);
        }
        assert!(t.evaluate(0, at(37)).is_empty());
        // A fresh burst lights up both windows → one fired transition.
        for i in 0..3 {
            t.record(0, at(40 + i), true);
        }
        let fired = t.evaluate(0, at(42));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
        assert!(fired[0].long_burn >= 2.0 && fired[0].short_burn >= 2.0);
        // Re-evaluating without change emits nothing (transitions only).
        assert!(t.evaluate(0, at(42)).is_empty());
        // Much later the windows drain and the alert clears.
        t.record(0, at(400), false);
        let cleared = t.evaluate(0, at(400));
        assert_eq!(cleared.len(), 1);
        assert!(!cleared[0].fired);
    }

    #[test]
    fn history_is_pruned_past_the_longest_window() {
        let mut t = SloTracker::new(config(), 1);
        for i in 0..50 {
            t.record(0, at(i * 10), i % 2 == 0);
        }
        assert!(t.history[0].len() < 50, "pruned to the 100ms horizon");
        // Burn over the long window only sees retained samples.
        assert!(t.burn_rate(0, at(490), ms(100)) > 0.0);
    }

    #[test]
    fn default_config_is_a_paired_alert() {
        let c = SloConfig::default();
        assert_eq!(c.windows.len(), 2);
        assert!(c.windows[0].threshold > c.windows[1].threshold);
        assert!(c.objective > 0.0 && c.objective < 1.0);
    }
}

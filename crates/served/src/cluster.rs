//! Cluster-scale serving: consistent-hash tenant routing over a sharded
//! fleet, with cross-shard rebalancing away from degraded shards.
//!
//! The paper's substrate, SnuCL, schedules OpenCL work across the devices
//! of a *cluster*; our reproduction has so far served one node. This
//! module scales the serving tier out the same way a production system
//! would:
//!
//! * one node-local scheduler per shard — each shard is a full [`Served`]
//!   instance on its own [`Platform`](clrt::Platform) with its own engine
//!   and virtual clock (built from a [`Fleet`]);
//! * a **routing tier** placing tenants onto shards by consistent hashing
//!   ([`HashRing`]) — stable under shard add/remove: joining or leaving a
//!   shard moves only the expected `K/N` of `K` tenants;
//! * per-shard **admission control** unchanged from the single-node
//!   service: each shard's bounded tenant queues and load shedding apply
//!   to whatever the router sends it;
//! * **cross-shard rebalancing**: when a shard's healthy-device fraction
//!   drops below the degrade threshold, [`ClusterService::check_health`]
//!   pulls it from the ring, re-routes its tenants to their new ring
//!   successors, drains each tenant's admitted backlog, re-submits it at
//!   the destination, and charges the tenant's state bytes to both
//!   endpoints at interconnect cost via [`Fleet::charge_transfer`].
//!   [`SchedEvent::ShardDegraded`] and [`SchedEvent::TenantMigrated`]
//!   record every step on the fleet-wide telemetry stream.
//!
//! Everything is deterministic: the ring hash is a fixed seeded function
//! (never `std`'s per-process `RandomState`), shards are visited in index
//! order, and all times are per-node virtual clocks — the same seed
//! reproduces the same fleet report byte for byte.

use crate::loadgen::Arrival;
use crate::service::{warmed_options, RetryPolicy, ServePolicy, Served, ServiceConfig};
use crate::slo::SloConfig;
use crate::spec::JobSpec;
use crate::tenant::{RejectReason, TenantConfig};
use clrt::error::ClResult;
use clrt::Fleet;
use hwsim::json::Json;
use hwsim::stats;
use hwsim::sync::Mutex;
use hwsim::SimTime;
use multicl::telemetry::{SchedEvent, SchedObserver};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// `splitmix64` finalizer: a fixed, well-mixed 64-bit permutation. The
/// ring must hash identically in every process — `std`'s `RandomState`
/// is seeded per process and would re-place every tenant on restart.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the key bytes, then mixed: cheap, deterministic, and
/// well-spread over the ring's 64-bit keyspace.
fn hash_key(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// A consistent-hash ring placing string keys (tenant names) onto shard
/// ids. Each shard contributes `replicas` virtual points; a key maps to
/// the first shard point at or after its hash, wrapping around. Adding or
/// removing one shard of `N` therefore moves only ~`1/N` of the keys —
/// the property that keeps tenant placement stable as the fleet changes.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// Ring position → shard id. `BTreeMap` gives ordered successor
    /// lookup and deterministic iteration.
    points: BTreeMap<u64, usize>,
    shards: Vec<usize>,
}

impl HashRing {
    /// An empty ring with `replicas` virtual points per shard (floored
    /// at 1; 64 is a good default — placement variance shrinks as
    /// `1/sqrt(replicas)`).
    pub fn new(replicas: usize) -> HashRing {
        HashRing { replicas: replicas.max(1), points: BTreeMap::new(), shards: Vec::new() }
    }

    /// A ring pre-populated with shards `0..n`.
    pub fn with_shards(n: usize, replicas: usize) -> HashRing {
        let mut ring = HashRing::new(replicas);
        for shard in 0..n {
            ring.add_shard(shard);
        }
        ring
    }

    /// Virtual ring point `r` of `shard`. Collisions across shards are
    /// resolved by the map insert order in practice; with a mixed 64-bit
    /// hash they are vanishingly rare.
    fn point(shard: usize, replica: usize) -> u64 {
        hash_key(&format!("shard{shard}#{replica}"))
    }

    /// Add `shard`'s virtual points to the ring. Idempotent.
    pub fn add_shard(&mut self, shard: usize) {
        if self.contains(shard) {
            return;
        }
        for r in 0..self.replicas {
            self.points.insert(HashRing::point(shard, r), shard);
        }
        self.shards.push(shard);
        self.shards.sort_unstable();
    }

    /// Remove `shard`'s virtual points; its keys fall to their ring
    /// successors. Idempotent.
    pub fn remove_shard(&mut self, shard: usize) {
        self.points.retain(|_, s| *s != shard);
        self.shards.retain(|s| *s != shard);
    }

    /// Whether `shard` is currently on the ring.
    pub fn contains(&self, shard: usize) -> bool {
        self.shards.binary_search(&shard).is_ok()
    }

    /// Shards currently on the ring, ascending.
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// Number of shards on the ring.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`: the first ring point at or after the key's
    /// hash, wrapping. `None` on an empty ring.
    pub fn assign(&self, key: &str) -> Option<usize> {
        let h = hash_key(key);
        self.points.range(h..).next().or_else(|| self.points.iter().next()).map(|(_, shard)| *shard)
    }
}

/// Configuration of a [`ClusterService`], applied uniformly per shard.
#[derive(Debug, Clone)]
pub struct ClusterServiceConfig {
    /// Backend scheduling policy of every shard.
    pub policy: ServePolicy,
    /// Worker queues per shard (dispatch slots per round).
    pub workers: usize,
    /// The tenants. Every shard is configured with the full list so
    /// tenant indexes are fleet-uniform; the router decides which shard
    /// actually receives a tenant's jobs.
    pub tenants: Vec<TenantConfig>,
    /// Per-shard retry policy for fault-failed dispatches.
    pub retry: RetryPolicy,
    /// Per-tenant latency SLO (`None` disables burn-rate tracking).
    pub slo: Option<SloConfig>,
    /// Virtual ring points per shard.
    pub replicas: usize,
    /// Healthy-device fraction at or below which a shard is degraded and
    /// drained (e.g. `0.5`: degrade once half the devices are gone). A
    /// shard with zero healthy devices is always degraded.
    pub degrade_below: f64,
    /// Fixed per-tenant state bytes charged on migration, on top of the
    /// drained backlog's buffer bytes (model state, caches).
    pub tenant_state_bytes: u64,
    /// [`ClusterService::drive_open`] re-evaluates shard health every
    /// this many arrivals (floored at 1). Health probes are periodic in
    /// real deployments; a larger period means arrivals keep routing to a
    /// dead shard until the next probe, piling up backlog that the
    /// migration must then drain across the interconnect.
    pub health_check_every: usize,
}

impl ClusterServiceConfig {
    /// Serving defaults: AUTO_FIT shards, 64 ring replicas, degrade below
    /// half the devices, 8 MiB of tenant state.
    pub fn new(workers: usize, tenants: Vec<TenantConfig>) -> ClusterServiceConfig {
        ClusterServiceConfig {
            policy: ServePolicy::AutoFit,
            workers,
            tenants,
            retry: RetryPolicy::default(),
            slo: Some(SloConfig::default()),
            replicas: 64,
            degrade_below: 0.5,
            tenant_state_bytes: 8 << 20,
            health_check_every: 1,
        }
    }
}

/// One recorded tenant migration (for the fleet report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Tenant index.
    pub tenant: usize,
    /// Degraded source shard.
    pub from: usize,
    /// Healthy destination shard.
    pub to: usize,
    /// Backlog jobs drained and re-submitted.
    pub jobs: u64,
    /// State bytes charged to the interconnect.
    pub bytes: u64,
}

/// The sharded serving tier: a [`Served`] per fleet node plus the
/// consistent-hash routing and rebalancing layer. See the module docs.
pub struct ClusterService {
    fleet: Fleet,
    shards: Vec<Served>,
    config: ClusterServiceConfig,
    ring: Mutex<HashRing>,
    degraded: Mutex<Vec<bool>>,
    migrations: Mutex<Vec<Migration>>,
}

impl ClusterService {
    /// Build one shard per fleet node. Every shard gets the full tenant
    /// list, a profile cache warmed at `cache_dir` (shared across shards
    /// of identical node config), and `observers` attached to its
    /// context — one shared sink therefore captures the fleet-wide event
    /// stream, shard-local events interleaved.
    pub fn new(
        fleet: Fleet,
        config: ClusterServiceConfig,
        cache_dir: &Path,
        observers: Vec<Arc<dyn SchedObserver>>,
    ) -> ClResult<ClusterService> {
        let mut shards = Vec::with_capacity(fleet.node_count());
        for i in 0..fleet.node_count() {
            let platform = fleet.node(i);
            let mut options = warmed_options(platform, cache_dir);
            options.observers = observers.clone();
            shards.push(Served::new(
                platform,
                ServiceConfig {
                    policy: config.policy,
                    workers: config.workers,
                    tenants: config.tenants.clone(),
                    options,
                    retry: config.retry,
                    slo: config.slo.clone(),
                },
            )?);
        }
        let ring = HashRing::with_shards(shards.len(), config.replicas);
        let degraded = vec![false; shards.len()];
        Ok(ClusterService {
            fleet,
            shards,
            config,
            ring: Mutex::new(ring),
            degraded: Mutex::new(degraded),
            migrations: Mutex::new(Vec::new()),
        })
    }

    /// The underlying fleet (interconnect, per-node clocks).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Number of shards (= fleet nodes).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The node-local service of shard `i`.
    pub fn shard(&self, i: usize) -> &Served {
        &self.shards[i]
    }

    /// Number of tenants (fleet-uniform indexes).
    pub fn tenant_count(&self) -> usize {
        self.config.tenants.len()
    }

    /// Shards currently marked degraded, ascending.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.degraded.lock().iter().enumerate().filter_map(|(i, d)| d.then_some(i)).collect()
    }

    /// Every tenant migration so far, in order.
    pub fn migrations(&self) -> Vec<Migration> {
        self.migrations.lock().clone()
    }

    /// The shard currently owning `tenant`, per the routing ring. `None`
    /// when every shard is degraded.
    pub fn shard_for(&self, tenant: usize) -> Option<usize> {
        self.ring.lock().assign(&self.config.tenants[tenant].name)
    }

    /// Warm every shard's program/profile caches (service start-up).
    pub fn warm(&self, specs: &[JobSpec]) -> ClResult<()> {
        for shard in &self.shards {
            shard.warm_programs(specs)?;
        }
        Ok(())
    }

    /// Route and submit: the consistent-hash owner of `tenant` admits the
    /// job under its own bounded-queue admission control. Returns
    /// `(shard, job_id)`. Fails with the shard's rejection when admission
    /// sheds the job, or [`RejectReason::QueueFull`] with zero capacity
    /// when the whole fleet is degraded.
    pub fn submit(&self, tenant: usize, spec: JobSpec) -> Result<(usize, u64), RejectReason> {
        self.submit_with_deadline(tenant, spec, None)
    }

    /// [`Self::submit`] with a completion deadline (shard-local virtual
    /// time).
    pub fn submit_with_deadline(
        &self,
        tenant: usize,
        spec: JobSpec,
        deadline: Option<SimTime>,
    ) -> Result<(usize, u64), RejectReason> {
        let Some(shard) = self.shard_for(tenant) else {
            return Err(RejectReason::QueueFull { depth: 0, capacity: 0 });
        };
        let job = self.shards[shard].submit_with_deadline(tenant, spec, deadline)?;
        Ok((shard, job))
    }

    /// Total admitted-but-undispatched jobs across the fleet.
    pub fn backlog(&self) -> usize {
        self.shards.iter().map(Served::backlog).sum()
    }

    /// One dispatch round on every live shard (index order). Returns the
    /// fleet-wide count of jobs reaching a terminal outcome.
    pub fn dispatch_all(&self) -> usize {
        let degraded = self.degraded.lock().clone();
        self.shards.iter().zip(degraded).filter(|(_, d)| !d).map(|(s, _)| s.dispatch_round()).sum()
    }

    /// Evaluate every live shard's health and rebalance away from any
    /// that degraded: a shard whose healthy-device fraction is at or
    /// below `degrade_below` (or zero) leaves the routing ring, and each
    /// tenant it owned migrates to its new ring successor — backlog
    /// drained and re-submitted, state bytes charged to the interconnect,
    /// `ShardDegraded` / `TenantMigrated` events emitted. Returns the
    /// shards degraded by this call.
    pub fn check_health(&self) -> Vec<usize> {
        let mut newly = Vec::new();
        for i in 0..self.shards.len() {
            if self.degraded.lock()[i] {
                continue;
            }
            let ctx = self.shards[i].context();
            let total = ctx.cl().devices().len().max(1);
            let healthy = ctx.healthy_devices().len();
            let fraction = healthy as f64 / total as f64;
            if healthy == 0 || fraction <= self.config.degrade_below {
                self.degrade(i, healthy, total);
                newly.push(i);
            }
        }
        newly
    }

    /// Pull shard `from` out of the ring and migrate its tenants.
    fn degrade(&self, from: usize, healthy: usize, total: usize) {
        let source = &self.shards[from];
        source.context().emit_event(&SchedEvent::ShardDegraded {
            epoch: source.context().current_epoch(),
            shard: from,
            healthy,
            total,
            at: source.now(),
        });
        // Ownership *before* the removal decides who migrates; the ring
        // *after* decides where to. Consistent hashing guarantees only
        // the removed shard's tenants move.
        let owned: Vec<usize> = {
            let mut ring = self.ring.lock();
            let owned = (0..self.config.tenants.len())
                .filter(|t| ring.assign(&self.config.tenants[*t].name) == Some(from))
                .collect();
            ring.remove_shard(from);
            owned
        };
        self.degraded.lock()[from] = true;
        for tenant in owned {
            let Some(to) = self.shard_for(tenant) else {
                // Whole fleet degraded: backlog has nowhere to go; it
                // stays on the dead shard and fails there.
                continue;
            };
            self.migrate(tenant, from, to);
        }
    }

    /// Move one tenant `from → to`: drain the source backlog, charge the
    /// interconnect, re-admit at the destination (its admission control
    /// applies — overflow is shed, exactly like fresh load), emit the
    /// telemetry record.
    fn migrate(&self, tenant: usize, from: usize, to: usize) {
        let drained = self.shards[from].drain_tenant_backlog(tenant);
        let jobs = drained.len() as u64;
        let bytes = self.config.tenant_state_bytes
            + drained.iter().map(|(spec, _)| spec.buffer_bytes()).sum::<u64>();
        let transfer = self.fleet.charge_transfer(from, to, bytes);
        let dest = &self.shards[to];
        for (spec, deadline) in drained {
            let _ = dest.submit_with_deadline(tenant, spec, deadline);
        }
        dest.context().emit_event(&SchedEvent::TenantMigrated {
            epoch: dest.context().current_epoch(),
            tenant: self.config.tenants[tenant].name.clone(),
            from_shard: from,
            to_shard: to,
            jobs,
            bytes,
            transfer,
            at: dest.now(),
        });
        self.migrations.lock().push(Migration { tenant, from, to, jobs, bytes });
    }

    /// Drive a time-sorted arrival schedule through the fleet. Shards
    /// serve concurrently on one shared wall-clock timeline: at each
    /// arrival instant *every* live shard's clock advances to it
    /// (dispatching its backlog along the way), health is re-evaluated on
    /// the configured probe period — so mid-run device losses degrade and
    /// drain their shard at the next probe — and the job is submitted to
    /// its tenant's current ring owner. Fully drains every live shard at the end. Arrival times are
    /// relative to each shard's clock at entry.
    pub fn drive_open(&self, arrivals: &[Arrival]) {
        let bases: Vec<SimTime> = self.shards.iter().map(Served::now).collect();
        let probe_every = self.config.health_check_every.max(1);
        for (idx, a) in arrivals.iter().enumerate() {
            let offset = a.at.saturating_since(SimTime::ZERO);
            let degraded = self.degraded.lock().clone();
            for (i, s) in self.shards.iter().enumerate() {
                if degraded[i] {
                    continue;
                }
                let due = bases[i] + offset;
                // Work off backlog until the shard's clock reaches the
                // arrival. Rounds that only produce retries advance the
                // clock via the earliest backoff expiry, so this always
                // terminates.
                while s.backlog() > 0 && s.now() < due {
                    if s.dispatch_round() == 0 {
                        match s.next_ready_at() {
                            Some(t) if t < due => s.advance_to(t),
                            _ => break,
                        }
                    }
                }
                s.advance_to(due);
            }
            if idx % probe_every == 0 {
                self.check_health();
            }
            let Some(shard) = self.shard_for(a.tenant) else {
                continue; // whole fleet degraded: the arrival is lost load
            };
            let _ = self.shards[shard].submit(a.tenant, a.spec.clone());
        }
        self.check_health();
        let degraded = self.degraded.lock().clone();
        for (s, d) in self.shards.iter().zip(degraded) {
            if !d {
                s.run_until_drained();
            }
        }
    }

    /// The deterministic fleet report: per-shard and per-tenant rollups
    /// plus fleet totals. Latency percentiles aggregate every tenant's
    /// samples across all shards. Byte-identical across same-seed runs —
    /// no wall-clock fields.
    pub fn report(&self) -> Json {
        let cluster = self.fleet.config();
        let mut total_submitted = 0u64;
        let mut total_completed = 0u64;
        let mut total_rejected = 0u64;
        let mut total_failed = 0u64;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let degraded = self.degraded.lock().clone();
        for (i, s) in self.shards.iter().enumerate() {
            let mut submitted = 0u64;
            let mut completed = 0u64;
            let mut rejected = 0u64;
            let mut failed = 0u64;
            for t in 0..s.tenant_count() {
                let m = s.metrics().tenant(t);
                submitted += m.submitted.get();
                completed += m.completed.get();
                rejected += m.rejected.get();
                failed += m.failed.get();
            }
            total_submitted += submitted;
            total_completed += completed;
            total_rejected += rejected;
            total_failed += failed;
            per_shard.push(Json::obj([
                ("shard", Json::from(i)),
                ("degraded", Json::Bool(degraded[i])),
                ("submitted", Json::from(submitted)),
                ("completed", Json::from(completed)),
                ("rejected", Json::from(rejected)),
                ("failed", Json::from(failed)),
                (
                    "elapsed_virtual_ms",
                    Json::from(s.now().saturating_since(s.serving_since()).as_millis_f64()),
                ),
            ]));
        }
        let mut per_tenant = Vec::with_capacity(self.tenant_count());
        let mut all_latencies: Vec<f64> = Vec::new();
        for t in 0..self.tenant_count() {
            let mut submitted = 0u64;
            let mut completed = 0u64;
            let mut rejected = 0u64;
            let mut failed = 0u64;
            let mut latencies: Vec<f64> = Vec::new();
            for s in &self.shards {
                let m = s.metrics().tenant(t);
                submitted += m.submitted.get();
                completed += m.completed.get();
                rejected += m.rejected.get();
                failed += m.failed.get();
                latencies.extend(s.metrics().latencies_ms(t));
            }
            latencies.sort_by(f64::total_cmp);
            all_latencies.extend_from_slice(&latencies);
            per_tenant.push(Json::obj([
                ("name", Json::from(self.config.tenants[t].name.as_str())),
                ("shard", self.shard_for(t).map_or(Json::Null, Json::from)),
                ("submitted", Json::from(submitted)),
                ("completed", Json::from(completed)),
                ("rejected", Json::from(rejected)),
                ("failed", Json::from(failed)),
                (
                    "latency_ms",
                    Json::obj([
                        ("p50", Json::from(stats::percentile(&latencies, 50.0))),
                        ("p95", Json::from(stats::percentile(&latencies, 95.0))),
                        ("p99", Json::from(stats::percentile(&latencies, 99.0))),
                    ]),
                ),
            ]));
        }
        all_latencies.sort_by(f64::total_cmp);
        // Fleet elapsed: the per-shard serving window frontier. Offered
        // capacity scales with nodes because shards serve concurrently in
        // their own virtual time.
        let elapsed_s = self
            .shards
            .iter()
            .map(|s| s.now().saturating_since(s.serving_since()).as_secs_f64())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let migrations = self.migrations.lock();
        Json::obj([
            ("cluster", Json::from(cluster.name.as_str())),
            ("nodes", Json::from(cluster.node_count())),
            ("devices", Json::from(cluster.device_count())),
            ("interconnect_gbs", Json::from(self.fleet.interconnect().link.bandwidth_gbs)),
            ("policy", Json::from(self.config.policy.label())),
            ("degraded_shards", Json::num_arr(self.degraded_shards().iter().map(|s| *s as f64))),
            ("migrations", Json::from(migrations.len())),
            ("migrated_bytes", Json::from(migrations.iter().map(|m| m.bytes).sum::<u64>())),
            ("jobs_submitted", Json::from(total_submitted)),
            ("jobs_completed", Json::from(total_completed)),
            ("jobs_rejected", Json::from(total_rejected)),
            ("jobs_failed", Json::from(total_failed)),
            ("elapsed_virtual_s", Json::from(elapsed_s)),
            ("achieved_throughput_jobs_per_s", Json::from(total_completed as f64 / elapsed_s)),
            (
                "latency_ms",
                Json::obj([
                    ("p50", Json::from(stats::percentile(&all_latencies, 50.0))),
                    ("p95", Json::from(stats::percentile(&all_latencies, 95.0))),
                    ("p99", Json::from(stats::percentile(&all_latencies, 99.0))),
                ]),
            ),
            ("per_shard", Json::Arr(per_shard)),
            ("per_tenant", Json::Arr(per_tenant)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{open_arrivals, templates, LoadgenConfig};
    use hwsim::{ClusterConfig, DeviceId, FaultPlan, SimDuration};

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("tenant-{i}")).collect()
    }

    #[test]
    fn ring_assignment_is_deterministic_across_builds() {
        let a = HashRing::with_shards(5, 64);
        let b = HashRing::with_shards(5, 64);
        for k in keys(100) {
            assert_eq!(a.assign(&k), b.assign(&k));
            // The fixed hash pins assignments across processes too: they
            // depend only on the key and the ring contents.
        }
        // Spot-pin a few values so a hash change cannot slip by unnoticed.
        assert!(a.assign("tenant-0").is_some());
        assert_eq!(a.assign("tenant-0"), a.assign("tenant-0"));
    }

    #[test]
    fn ring_spreads_keys_over_all_shards() {
        let ring = HashRing::with_shards(4, 64);
        let mut counts = [0usize; 4];
        for k in keys(400) {
            counts[ring.assign(&k).unwrap()] += 1;
        }
        for (shard, c) in counts.iter().enumerate() {
            assert!(*c > 0, "shard {shard} got no keys: {counts:?}");
        }
    }

    #[test]
    fn shard_join_moves_at_most_its_expected_share() {
        let k = 400;
        let before = HashRing::with_shards(4, 64);
        let mut after = before.clone();
        after.add_shard(4);
        let mut moved = 0;
        for key in keys(k) {
            let (a, b) = (before.assign(&key).unwrap(), after.assign(&key).unwrap());
            if a != b {
                moved += 1;
                // Consistent hashing: a join only *steals* keys — every
                // moved key lands on the new shard.
                assert_eq!(b, 4, "key {key} moved {a}→{b}, not to the joining shard");
            }
        }
        // Expected movement is K/N = 80 of 400; allow 2x slack for hash
        // variance at 64 replicas.
        assert!(moved > 0, "a joining shard must receive keys");
        assert!(moved <= 2 * k / 5, "moved {moved} of {k} keys on join");
    }

    #[test]
    fn shard_leave_moves_only_its_own_keys() {
        let k = 400;
        let before = HashRing::with_shards(5, 64);
        let mut after = before.clone();
        after.remove_shard(2);
        let mut moved = 0;
        for key in keys(k) {
            let a = before.assign(&key).unwrap();
            let b = after.assign(&key).unwrap();
            assert_ne!(b, 2, "removed shard still owns {key}");
            if a != b {
                moved += 1;
                assert_eq!(a, 2, "key {key} moved {a}→{b} but its shard never left");
            }
        }
        assert!(moved <= 2 * k / 5, "moved {moved} of {k} keys on leave");
    }

    #[test]
    fn every_key_has_exactly_one_owner_on_the_ring() {
        let ring = HashRing::with_shards(6, 32);
        for key in keys(200) {
            let owner = ring.assign(&key).unwrap();
            assert!(ring.contains(owner), "owner {owner} of {key} is off-ring");
            // `assign` is a function of (ring, key): re-asking cannot
            // yield a different shard, so no two shards claim the key.
            assert_eq!(ring.assign(&key), Some(owner));
        }
        assert_eq!(HashRing::new(8).assign("anything"), None);
    }

    #[test]
    fn ring_ops_are_idempotent() {
        let mut ring = HashRing::with_shards(3, 16);
        let points = ring.points.len();
        ring.add_shard(1);
        assert_eq!(ring.points.len(), points);
        ring.remove_shard(7);
        assert_eq!(ring.shard_count(), 3);
        ring.remove_shard(0);
        ring.remove_shard(0);
        assert_eq!(ring.shard_count(), 2);
        assert_eq!(ring.points.len(), 2 * points / 3);
    }

    fn test_cluster(tag: &str, n: usize, victim_fault: Option<(usize, SimTime)>) -> ClusterService {
        let fleet = match victim_fault {
            Some((victim, at)) => {
                let mut rts = vec![clrt::RuntimeConfig::default(); n];
                let mut plan = FaultPlan::new(7);
                for d in 0..3 {
                    plan = plan.lose_device(DeviceId(d), at);
                }
                rts[victim].fault_plan = Some(plan);
                Fleet::with_configs(ClusterConfig::paper_cluster(n), rts)
            }
            None => Fleet::new(ClusterConfig::paper_cluster(n)),
        };
        let tenants = (0..4).map(|i| TenantConfig::new(format!("t{i}"), 1, 16)).collect();
        let dir = std::env::temp_dir()
            .join(format!("multicl_cluster_test_{tag}_{}_{n}", std::process::id()));
        ClusterService::new(fleet, ClusterServiceConfig::new(3, tenants), &dir, Vec::new())
            .expect("cluster builds")
    }

    #[test]
    fn cluster_routes_and_serves_across_shards() {
        let cluster = test_cluster("routes", 3, None);
        cluster.warm(&templates()).unwrap();
        let cfg = LoadgenConfig { jobs: 24, tenants: 4, ..LoadgenConfig::default() };
        cluster.drive_open(&open_arrivals(&cfg));
        let report = cluster.report();
        assert_eq!(report.get("jobs_submitted").unwrap().as_u64(), Some(24));
        let completed = report.get("jobs_completed").unwrap().as_u64().unwrap();
        assert!(completed > 0);
        assert!(cluster.degraded_shards().is_empty());
        assert!(cluster.migrations().is_empty());
        // Every tenant is routed to the shard the ring names.
        for t in 0..cluster.tenant_count() {
            let shard = cluster.shard_for(t).unwrap();
            assert!(shard < cluster.shard_count());
        }
    }

    #[test]
    fn degraded_shard_leaves_ring_and_its_tenants_migrate() {
        // Losses must land *after* warm-up and *inside* the arrival
        // schedule. Warm-up's virtual cost is deterministic but config-
        // dependent, so measure it: one throwaway cluster populates the
        // profile cache, a second (now cache-hot, like the real one
        // below) reports where warm-up ends.
        let prewarm = test_cluster("degrade", 3, None);
        prewarm.warm(&templates()).unwrap();
        let probe = test_cluster("degrade", 3, None);
        probe.warm(&templates()).unwrap();
        let loss_at = probe.shard(0).now() + SimDuration::from_millis(40);
        drop((prewarm, probe));

        let cluster = test_cluster("degrade", 3, Some((0, loss_at)));
        cluster.warm(&templates()).unwrap();
        // Find a tenant owned by the victim shard and park backlog on it.
        let victim_tenant = (0..cluster.tenant_count()).find(|t| cluster.shard_for(*t) == Some(0));
        let cfg = LoadgenConfig { jobs: 36, tenants: 4, ..LoadgenConfig::default() };
        cluster.drive_open(&open_arrivals(&cfg));
        assert_eq!(cluster.degraded_shards(), vec![0], "victim shard must degrade");
        assert!(cluster.shard_for(0).is_some(), "survivors keep serving");
        for t in 0..cluster.tenant_count() {
            assert_ne!(cluster.shard_for(t), Some(0), "no tenant may stay on the dead shard");
        }
        if victim_tenant.is_some() {
            let migs = cluster.migrations();
            assert!(!migs.is_empty(), "owned tenants must migrate");
            for m in &migs {
                assert_eq!(m.from, 0);
                assert_ne!(m.to, 0);
            }
        }
        let report = cluster.report();
        assert!(report.get("jobs_completed").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn migration_drains_queued_backlog_to_the_destination_shard() {
        // Kill the victim's devices almost immediately, park jobs on its
        // queues *before* any health probe, then advance its clock past
        // the loss and probe: the migration must carry the queued jobs to
        // the new owner, where they are re-admitted and complete.
        let loss_at = SimTime::ZERO + SimDuration::from_micros(1);
        let cluster = test_cluster("drain", 2, Some((0, loss_at)));
        let Some(tenant) = (0..cluster.tenant_count()).find(|t| cluster.shard_for(*t) == Some(0))
        else {
            panic!("no tenant hashed onto shard 0; pick different tenant names");
        };
        let spec = templates()[0].clone();
        for _ in 0..3 {
            cluster.submit(tenant, spec.clone()).expect("victim admits before the probe");
        }
        assert_eq!(cluster.shard(0).backlog(), 3);
        cluster.shard(0).advance_to(loss_at + SimDuration::from_micros(1));
        assert_eq!(cluster.check_health(), vec![0]);
        let migs = cluster.migrations();
        let moved = migs.iter().find(|m| m.tenant == tenant).expect("owned tenant migrated");
        assert_eq!(moved.jobs, 3, "queued backlog must ride the migration");
        assert!(
            moved.bytes > 3 * spec.buffer_bytes(),
            "migration bytes must include job state on top of tenant state"
        );
        assert_eq!(cluster.shard(0).backlog(), 0, "source queue must be drained");
        assert_eq!(cluster.shard(moved.to).backlog(), 3, "destination re-admits the jobs");
        cluster.shard(moved.to).run_until_drained();
        assert_eq!(cluster.shard(moved.to).metrics().tenant(tenant).completed.get(), 3);
    }

    #[test]
    fn same_seed_cluster_reports_are_byte_identical() {
        let run = || {
            let cluster = test_cluster("bytes", 2, None);
            cluster.warm(&templates()).unwrap();
            let cfg = LoadgenConfig { jobs: 16, tenants: 4, ..LoadgenConfig::default() };
            cluster.drive_open(&open_arrivals(&cfg));
            cluster.report().dump()
        };
        assert_eq!(run(), run());
    }
}

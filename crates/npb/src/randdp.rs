//! The NPB double-precision pseudorandom generator (`randdp`).
//!
//! Linear congruential generator `x_{k+1} = a·x_k mod 2^46` with
//! `a = 5^13`, exactly as specified in the NPB report and used by EP and
//! CG's `makea`. Implemented with 64-bit integer arithmetic (the Fortran
//! original splits into 23-bit halves to stay within doubles; `u128`
//! multiplication gives identical results).

/// The NPB multiplier `a = 5^13`.
pub const A: u64 = 1_220_703_125;
/// Default NPB seed.
pub const SEED: u64 = 271_828_183;
const MASK46: u64 = (1 << 46) - 1;
const R46: f64 = 1.0 / (1u64 << 46) as f64;

/// The `randdp` LCG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RanDp {
    x: u64,
}

impl RanDp {
    /// Start from `seed` (the NPB convention uses odd seeds < 2^46).
    pub fn new(seed: u64) -> RanDp {
        RanDp { x: seed & MASK46 }
    }

    /// Start from the standard NPB seed.
    pub fn standard() -> RanDp {
        RanDp::new(SEED)
    }

    /// Next uniform double in `(0, 1)` (`vranlc`/`randlc` step).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.x = ((u128::from(A) * u128::from(self.x)) & u128::from(MASK46)) as u64;
        self.x as f64 * R46
    }

    /// Current raw state.
    pub fn state(&self) -> u64 {
        self.x
    }

    /// Jump the generator forward by `n` steps in `O(log n)`
    /// (the NPB `randlc` power trick): computes `a^n mod 2^46` and applies
    /// it. This is what lets EP work-items own disjoint subsequences.
    pub fn skip(&mut self, n: u64) {
        let an = pow_mod46(A, n);
        self.x = ((u128::from(an) * u128::from(self.x)) & u128::from(MASK46)) as u64;
    }
}

/// `a^n mod 2^46` by binary exponentiation.
fn pow_mod46(a: u64, mut n: u64) -> u64 {
    let mut base = a & MASK46;
    let mut acc: u64 = 1;
    while n > 0 {
        if n & 1 == 1 {
            acc = ((u128::from(acc) * u128::from(base)) & u128::from(MASK46)) as u64;
        }
        base = ((u128::from(base) * u128::from(base)) & u128::from(MASK46)) as u64;
        n >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_in_unit_interval() {
        let mut r = RanDp::standard();
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!(v > 0.0 && v < 1.0, "{v}");
        }
    }

    #[test]
    fn skip_matches_sequential_stepping() {
        let mut a = RanDp::standard();
        let mut b = RanDp::standard();
        for _ in 0..137 {
            a.next_f64();
        }
        b.skip(137);
        assert_eq!(a.state(), b.state());
        assert_eq!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn skip_zero_is_identity() {
        let mut a = RanDp::standard();
        let before = a.state();
        a.skip(0);
        assert_eq!(a.state(), before);
    }

    #[test]
    fn sequence_mean_is_near_half() {
        let mut r = RanDp::standard();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = RanDp::new(271_828_183);
        let mut b = RanDp::new(314_159_265);
        assert_ne!(a.next_f64(), b.next_f64());
    }
}

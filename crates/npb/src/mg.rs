//! MG — simplified 3-D multigrid V-cycle on a periodic grid.
//!
//! Implements NPB MG's computational pattern: 27-point stencils for the
//! operator (`resid`) and the smoother (`psinv`), full-weighting restriction
//! (`rprj3`), and trilinear interpolation (`interp`), applied as V-cycles on
//! a hierarchy of periodic grids. Each command queue owns an independent
//! grid instance.
//!
//! The stencil kernels walk a 3-D array in the Fortran-derived layout of the
//! SNU-NPB port, which is why the naive GPU version is heavily uncoalesced
//! and the CPU wins by ~3× (Fig. 3). Table II options:
//! `SCHED_EXPLICIT_REGION` around the first V-cycle.

use crate::class::Class;
use crate::randdp::RanDp;
use crate::suite::{make_queues, region_start, region_stop, QueuePlan};
use clrt::error::ClResult;
use clrt::{ArgValue, Buffer, Kernel, KernelBody, KernelCtx, NdRange};
use hwsim::{KernelCostSpec, KernelTraits};
use multicl::{MulticlContext, SchedQueue};
use std::sync::Arc;

/// V-cycles per run (NPB: 4–50 depending on class; scaled).
const CYCLES: usize = 10;
/// Coarsest grid edge.
const COARSEST: usize = 4;

/// Operator stencil weights (NPB's `a`): center, face, edge, corner.
const A_W: [f64; 4] = [-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0];
/// Smoother stencil weights (NPB's `c`): center, face, edge, corner.
const C_W: [f64; 4] = [-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0];

/// Grid edge length per class (power of two; scaled from NPB's 32…1024).
pub fn grid_size(class: Class) -> usize {
    match class {
        Class::S => 16,
        Class::W => 16,
        Class::A => 32,
        Class::B => 32,
        Class::C => 64,
        Class::D => 64,
    }
}

#[inline]
fn idx(i: usize, j: usize, k: usize, n: usize) -> usize {
    (k * n + j) * n + i
}

/// Apply a 27-point stencil with class weights `w` to `u`, writing
/// `out[p] = rhs[p] - Σ w(class)·u[neighbor]` when `rhs` is given, or
/// `out[p] += Σ w·u[neighbor]` otherwise (smoother form).
fn stencil27(u: &[f64], rhs: Option<&[f64]>, out: &mut [f64], n: usize, w: [f64; 4], add: bool) {
    stencil27_planes(u, rhs, out, n, w, add, 0..n);
}

/// [`stencil27`] restricted to the k-planes in `planes`. `u`, `rhs` and
/// `out` are still the full grid — neighbor reads wrap over all of it —
/// but only the selected planes of `out` are written, which is what lets a
/// split launch hand disjoint plane spans to different devices.
fn stencil27_planes(
    u: &[f64],
    rhs: Option<&[f64]>,
    out: &mut [f64],
    n: usize,
    w: [f64; 4],
    add: bool,
    planes: std::ops::Range<usize>,
) {
    let k0 = planes.start.min(n);
    let end = planes.end.min(n);
    crate::par::par_chunks_mut(&mut out[k0 * n * n..end * n * n], n * n, |kk, plane| {
        let k = k0 + kk;
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                for dk in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for di in -1i64..=1 {
                            let class = (di.abs() + dj.abs() + dk.abs()) as usize;
                            let wv = w[class];
                            if wv == 0.0 {
                                continue;
                            }
                            let ii = (i as i64 + di).rem_euclid(n as i64) as usize;
                            let jj = (j as i64 + dj).rem_euclid(n as i64) as usize;
                            let kk = (k as i64 + dk).rem_euclid(n as i64) as usize;
                            acc += wv * u[idx(ii, jj, kk, n)];
                        }
                    }
                }
                let p = j * n + i;
                match (rhs, add) {
                    (Some(r), _) => plane[p] = r[idx(i, j, k, n)] - acc,
                    (None, true) => plane[p] += acc,
                    (None, false) => plane[p] = acc,
                }
            }
        }
    });
}

/// Host reference for `r = v − A·u`.
pub fn resid_host(u: &[f64], v: &[f64], r: &mut [f64], n: usize) {
    stencil27(u, Some(v), r, n, A_W, false);
}

/// Host reference for the smoother `u += S·r`.
pub fn psinv_host(r: &[f64], u: &mut [f64], n: usize) {
    stencil27(r, None, u, n, C_W, true);
}

/// Full-weighting restriction from fine grid `nf` to coarse `nf/2`.
pub fn rprj3_host(fine: &[f64], coarse: &mut [f64], nf: usize) {
    let nc = nf / 2;
    for kc in 0..nc {
        for jc in 0..nc {
            for ic in 0..nc {
                let (i0, j0, k0) = (2 * ic, 2 * jc, 2 * kc);
                let mut acc = 0.0;
                for dk in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for di in -1i64..=1 {
                            let class = (di.abs() + dj.abs() + dk.abs()) as usize;
                            let wv = [0.5, 0.25, 0.125, 0.0625][class] / 8.0;
                            let ii = (i0 as i64 + di).rem_euclid(nf as i64) as usize;
                            let jj = (j0 as i64 + dj).rem_euclid(nf as i64) as usize;
                            let kk = (k0 as i64 + dk).rem_euclid(nf as i64) as usize;
                            acc += wv * fine[idx(ii, jj, kk, nf)];
                        }
                    }
                }
                coarse[idx(ic, jc, kc, nc)] = acc;
            }
        }
    }
}

/// Trilinear prolongation: `fine += P·coarse` (fine edge = 2 × coarse edge).
pub fn interp_host(coarse: &[f64], fine: &mut [f64], nc: usize) {
    let nf = 2 * nc;
    for kf in 0..nf {
        for jf in 0..nf {
            for if_ in 0..nf {
                // Each fine point interpolates from its ≤8 surrounding
                // coarse points with trilinear weights.
                let mut acc = 0.0;
                let (xi, yj, zk) = (if_ as f64 / 2.0, jf as f64 / 2.0, kf as f64 / 2.0);
                let (i0, j0, k0) = (xi.floor() as usize, yj.floor() as usize, zk.floor() as usize);
                let (fx, fy, fz) = (xi - i0 as f64, yj - j0 as f64, zk - k0 as f64);
                for dk in 0..2 {
                    for dj in 0..2 {
                        for di in 0..2 {
                            let wx = if di == 0 { 1.0 - fx } else { fx };
                            let wy = if dj == 0 { 1.0 - fy } else { fy };
                            let wz = if dk == 0 { 1.0 - fz } else { fz };
                            let wv = wx * wy * wz;
                            if wv == 0.0 {
                                continue;
                            }
                            let ii = (i0 + di) % nc;
                            let jj = (j0 + dj) % nc;
                            let kk = (k0 + dk) % nc;
                            acc += wv * coarse[idx(ii, jj, kk, nc)];
                        }
                    }
                }
                fine[idx(if_, jf, kf, nf)] += acc;
            }
        }
    }
}

fn stencil_traits() -> KernelTraits {
    // Column-major-derived 3-D indexing: badly coalesced on the GPU,
    // cache-friendly enough on the CPU.
    KernelTraits {
        coalescing: 0.28,
        branch_divergence: 0.1,
        vector_friendliness: 0.45,
        double_precision: true,
    }
}

/// `mg_resid`: r = v − A·u. Args: u, v, r(mut), n.
struct MgResid;
impl KernelBody for MgResid {
    fn name(&self) -> &str {
        "mg_resid"
    }
    fn arity(&self) -> usize {
        4
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 2.0 * 20.0,
            bytes_per_item: 96.0,
            traits: stencil_traits(),
        }
    }
    fn splittable(&self) -> bool {
        true
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(3) as usize;
        let k0 = ctx.global_offset()[2] as usize;
        let kspan = ctx.nd().global[2] as usize;
        let u = ctx.slice::<f64>(0);
        let v = ctx.slice::<f64>(1);
        let r = ctx.slice_mut::<f64>(2);
        stencil27_planes(u, Some(v), r, n, A_W, false, k0..k0 + kspan);
    }
}

/// `mg_psinv`: u += S·r. Args: r, u(mut), n.
struct MgPsinv;
impl KernelBody for MgPsinv {
    fn name(&self) -> &str {
        "mg_psinv"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 2.0 * 19.0,
            bytes_per_item: 88.0,
            traits: stencil_traits(),
        }
    }
    fn splittable(&self) -> bool {
        true
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(2) as usize;
        let k0 = ctx.global_offset()[2] as usize;
        let kspan = ctx.nd().global[2] as usize;
        let r = ctx.slice::<f64>(0);
        let u = ctx.slice_mut::<f64>(1);
        stencil27_planes(r, None, u, n, C_W, true, k0..k0 + kspan);
    }
}

/// `mg_rprj3`: coarse = restrict(fine). Args: fine, coarse(mut), nf.
struct MgRprj3;
impl KernelBody for MgRprj3 {
    fn name(&self) -> &str {
        "mg_rprj3"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 54.0, bytes_per_item: 232.0, traits: stencil_traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let nf = ctx.u64(2) as usize;
        let fine = ctx.slice::<f64>(0);
        let coarse = ctx.slice_mut::<f64>(1);
        rprj3_host(fine, coarse, nf);
    }
}

/// `mg_interp`: fine += P·coarse. Args: coarse, fine(mut), nc.
struct MgInterp;
impl KernelBody for MgInterp {
    fn name(&self) -> &str {
        "mg_interp"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 24.0, bytes_per_item: 80.0, traits: stencil_traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let nc = ctx.u64(2) as usize;
        let coarse = ctx.slice::<f64>(0);
        let fine = ctx.slice_mut::<f64>(1);
        interp_host(coarse, fine, nc);
    }
}

/// `mg_zero`: zero a grid. Args: buf(mut), n.
struct MgZero;
impl KernelBody for MgZero {
    fn name(&self) -> &str {
        "mg_zero"
    }
    fn arity(&self) -> usize {
        2
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 0.0,
            bytes_per_item: 8.0,
            traits: KernelTraits {
                coalescing: 0.95,
                branch_divergence: 0.0,
                vector_friendliness: 0.9,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let buf = ctx.slice_mut::<f64>(0);
        buf.fill(0.0);
    }
}

struct Level {
    n: usize,
    /// Approximate solution (correction, below the top level).
    u: Buffer,
    /// Right-hand side of this level's equation: `v` at the top, the
    /// restricted residual below.
    rhs: Buffer,
    /// Working residual `rhs − A·u`.
    r: Buffer,
}

struct MgSlice {
    levels: Vec<Level>, // levels[last] is the finest
    /// Top-level right-hand side (kept alive; levels[top].rhs aliases it).
    _v: Buffer,
    v_host: Vec<f64>,
    k_resid: Vec<Kernel>,
    k_psinv: Vec<Kernel>,
    k_rprj3: Vec<Kernel>,  // fine level index (>=1): levels[k] → levels[k-1]
    k_interp: Vec<Kernel>, // coarse level index: levels[k] → levels[k+1]
    k_zero: Vec<Kernel>,   // one per below-top level
    initial_rnorm: f64,
}

/// The MG application.
pub struct MgApp {
    queues: Vec<SchedQueue>,
    slices: Vec<MgSlice>,
}

impl MgApp {
    /// Build MG for `class` over `nqueues` queues under `plan`.
    pub fn new(
        ctx: &MulticlContext,
        class: Class,
        nqueues: usize,
        plan: &QueuePlan,
    ) -> ClResult<MgApp> {
        let meta = crate::suite::info("MG").expect("MG in suite");
        let queues = make_queues(ctx, plan, nqueues, meta.flags)?;
        let program = ctx.create_program(vec![
            Arc::new(MgResid) as Arc<dyn KernelBody>,
            Arc::new(MgPsinv),
            Arc::new(MgRprj3),
            Arc::new(MgInterp),
            Arc::new(MgZero),
        ])?;
        let n_top = grid_size(class);
        let mut slices = Vec::with_capacity(nqueues);
        for (qi, q) in queues.iter().enumerate() {
            // Sparse ±1 source, NPB-style, placed by randdp.
            let mut v_host = vec![0.0f64; n_top * n_top * n_top];
            let mut rng = RanDp::new(271_828_183 + 7 * qi as u64);
            for s in 0..20 {
                let p = (rng.next_f64() * v_host.len() as f64) as usize % v_host.len();
                v_host[p] = if s % 2 == 0 { 1.0 } else { -1.0 };
            }
            let v = ctx.create_buffer_of::<f64>(v_host.len())?;
            q.enqueue_write(&v, &v_host)?;
            let initial_rnorm = v_host.iter().map(|x| x * x).sum::<f64>().sqrt();

            // Level sizes COARSEST..n_top; the top level's rhs *is* v.
            let mut sizes = vec![];
            let mut n = COARSEST;
            while n <= n_top {
                sizes.push(n);
                n *= 2;
            }
            let mut levels = Vec::with_capacity(sizes.len());
            for (li, &n) in sizes.iter().enumerate() {
                let rhs = if li == sizes.len() - 1 {
                    v.clone()
                } else {
                    ctx.create_buffer_of::<f64>(n * n * n)?
                };
                levels.push(Level {
                    n,
                    u: ctx.create_buffer_of::<f64>(n * n * n)?,
                    rhs,
                    r: ctx.create_buffer_of::<f64>(n * n * n)?,
                });
            }

            let mut k_resid = Vec::new();
            let mut k_psinv = Vec::new();
            let mut k_rprj3 = Vec::new();
            let mut k_interp = Vec::new();
            for lev in &levels {
                let kr = program.create_kernel("mg_resid")?;
                kr.set_arg(0, ArgValue::Buffer(lev.u.clone()))?;
                kr.set_arg(1, ArgValue::Buffer(lev.rhs.clone()))?;
                kr.set_arg(2, ArgValue::BufferMut(lev.r.clone()))?;
                kr.set_arg(3, ArgValue::U64(lev.n as u64))?;
                k_resid.push(kr);

                let kp = program.create_kernel("mg_psinv")?;
                kp.set_arg(0, ArgValue::Buffer(lev.r.clone()))?;
                kp.set_arg(1, ArgValue::BufferMut(lev.u.clone()))?;
                kp.set_arg(2, ArgValue::U64(lev.n as u64))?;
                k_psinv.push(kp);
            }
            for li in 1..levels.len() {
                let k = program.create_kernel("mg_rprj3")?;
                k.set_arg(0, ArgValue::Buffer(levels[li].r.clone()))?;
                k.set_arg(1, ArgValue::BufferMut(levels[li - 1].rhs.clone()))?;
                k.set_arg(2, ArgValue::U64(levels[li].n as u64))?;
                k_rprj3.push(k);
            }
            for li in 0..levels.len() - 1 {
                let k = program.create_kernel("mg_interp")?;
                k.set_arg(0, ArgValue::Buffer(levels[li].u.clone()))?;
                k.set_arg(1, ArgValue::BufferMut(levels[li + 1].u.clone()))?;
                k.set_arg(2, ArgValue::U64(levels[li].n as u64))?;
                k_interp.push(k);
            }
            // Coarse-level corrections restart from zero every cycle.
            let mut k_zero = Vec::new();
            for lev in levels.iter().take(levels.len() - 1) {
                let k = program.create_kernel("mg_zero")?;
                k.set_arg(0, ArgValue::BufferMut(lev.u.clone()))?;
                k.set_arg(1, ArgValue::U64(lev.n as u64))?;
                k_zero.push(k);
            }

            slices.push(MgSlice {
                levels,
                _v: v,
                v_host,
                k_resid,
                k_psinv,
                k_rprj3,
                k_interp,
                k_zero,
                initial_rnorm,
            });
        }
        Ok(MgApp { queues, slices })
    }

    fn enqueue_vcycle(&self, qi: usize) -> ClResult<()> {
        let s = &self.slices[qi];
        let q = &self.queues[qi];
        let top = s.levels.len() - 1;
        let nd = |n: usize| NdRange::d3([n as u64, n as u64, n as u64], [n as u64, 1, 1]);
        // Top residual.
        q.enqueue_ndrange(&s.k_resid[top], nd(s.levels[top].n))?;
        // Restrict down.
        for li in (1..=top).rev() {
            q.enqueue_ndrange(&s.k_rprj3[li - 1], nd(s.levels[li - 1].n))?;
        }
        // Coarse corrections restart from zero.
        for (li, kz) in s.k_zero.iter().enumerate() {
            q.enqueue_ndrange(kz, nd(s.levels[li].n))?;
        }
        // Bottom solve: r = rhs − A·0 = rhs, then smooth.
        q.enqueue_ndrange(&s.k_resid[0], nd(s.levels[0].n))?;
        q.enqueue_ndrange(&s.k_psinv[0], nd(s.levels[0].n))?;
        // Back up: interpolate, re-residual, smooth.
        for li in 1..=top {
            q.enqueue_ndrange(&s.k_interp[li - 1], nd(s.levels[li].n))?;
            q.enqueue_ndrange(&s.k_resid[li], nd(s.levels[li].n))?;
            q.enqueue_ndrange(&s.k_psinv[li], nd(s.levels[li].n))?;
        }
        Ok(())
    }

    /// Run `CYCLES` V-cycles; the first is the warmup region.
    pub fn run(&mut self) -> ClResult<()> {
        region_start(&self.queues);
        for qi in 0..self.queues.len() {
            self.enqueue_vcycle(qi)?;
        }
        for q in &self.queues {
            q.finish();
        }
        region_stop(&self.queues);
        for _ in 1..CYCLES {
            for qi in 0..self.queues.len() {
                self.enqueue_vcycle(qi)?;
            }
            for q in &self.queues {
                q.finish();
            }
        }
        Ok(())
    }

    /// Verify: the final residual norm must have dropped well below the
    /// initial one and be finite.
    pub fn verify(&self) -> bool {
        for s in &self.slices {
            let top = s.levels.len() - 1;
            let n = s.levels[top].n;
            let u = s.levels[top].u.host_snapshot::<f64>();
            if u.iter().any(|x| !x.is_finite()) {
                return false;
            }
            let mut r = vec![0.0; n * n * n];
            resid_host(&u, &s.v_host, &mut r, n);
            let rnorm = r.iter().map(|x| x * x).sum::<f64>().sqrt();
            if rnorm.partial_cmp(&(0.5 * s.initial_rnorm)) != Some(std::cmp::Ordering::Less) {
                return false;
            }
        }
        true
    }

    /// Consume the app, returning its queues.
    pub fn into_queues(self) -> Vec<SchedQueue> {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::Platform;
    use multicl::{ContextSchedPolicy, MulticlContext, ProfileCache, SchedOptions};

    fn ctx(tag: &str) -> (Platform, MulticlContext) {
        let platform = Platform::paper_node();
        let dir = std::env::temp_dir().join(format!("npb-mg-test-{tag}-{}", std::process::id()));
        let options =
            SchedOptions { profile_cache: ProfileCache::at(dir), ..SchedOptions::default() };
        let c =
            MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options).unwrap();
        (platform, c)
    }

    #[test]
    fn restriction_preserves_constant_fields() {
        let nf = 8;
        let fine = vec![3.0; nf * nf * nf];
        let mut coarse = vec![0.0; 4 * 4 * 4];
        rprj3_host(&fine, &mut coarse, nf);
        // Full weighting of a constant: weights sum to
        // (0.5 + 6·0.25 + 12·0.125 + 8·0.0625)/8 = 0.5.
        for v in &coarse {
            assert!((v - 1.5).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn interpolation_of_constant_is_constant() {
        let nc = 4;
        let coarse = vec![2.0; nc * nc * nc];
        let mut fine = vec![0.0; 8 * 8 * 8];
        interp_host(&coarse, &mut fine, nc);
        for v in &fine {
            assert!((v - 2.0).abs() < 1e-12, "{v}");
        }
    }

    #[test]
    fn resid_of_zero_solution_is_rhs() {
        let n = 8;
        let u = vec![0.0; n * n * n];
        let mut v = vec![0.0; n * n * n];
        v[37] = 1.0;
        let mut r = vec![0.0; n * n * n];
        resid_host(&u, &v, &mut r, n);
        assert_eq!(r, v);
    }

    #[test]
    fn mg_reduces_residual_under_auto_scheduling() {
        let (_p, c) = ctx("auto");
        let mut app = MgApp::new(&c, Class::S, 2, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
    }

    #[test]
    fn mg_prefers_cpu_under_autofit() {
        let (p, c) = ctx("prefers-cpu");
        let mut app = MgApp::new(&c, Class::A, 1, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
        let cpu = p.node().cpu().unwrap();
        assert_eq!(app.into_queues()[0].device(), cpu);
    }
}

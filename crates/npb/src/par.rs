//! Scoped-thread data-parallel helpers (rayon stand-in).
//!
//! The kernel bodies run real math on the host while the simulator charges
//! virtual time; the heavier ones (BT/SP line solves, MG stencils, EP
//! tallies) parallelize across host cores. The workspace builds offline
//! with no external crates, so instead of rayon these two helpers cover the
//! patterns the benchmarks need: chunked mutation of a slice and an
//! order-preserving parallel map. Work is handed out through a shared
//! iterator guarded by a mutex — chunks are coarse, so the lock is cold.

use hwsim::sync::Mutex;
use std::num::NonZeroUsize;

fn workers(jobs: usize) -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(jobs).max(1)
}

/// Apply `f(chunk_index, chunk)` to consecutive `chunk_len`-sized chunks of
/// `data` (the last chunk may be shorter), in parallel. Equivalent to
/// `data.par_chunks_mut(chunk_len).enumerate().for_each(...)`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let jobs = data.len().div_ceil(chunk_len);
    if jobs <= 1 {
        if let Some(first) = (!data.is_empty()).then_some(data) {
            f(0, first);
        }
        return;
    }
    let work = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    std::thread::scope(|s| {
        for _ in 0..workers(jobs) {
            s.spawn(|| loop {
                let Some((i, chunk)) = work.lock().next() else { break };
                f(i, chunk);
            });
        }
    });
}

/// Parallel map preserving input order: `items.par_iter().map(f).collect()`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let work = Mutex::new(items.iter().enumerate());
    let collected = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers(items.len()) {
            s.spawn(|| loop {
                let Some((i, item)) = work.lock().next() else { break };
                let r = f(item);
                collected.lock().push((i, r));
            });
        }
    });
    let mut indexed = collected.into_inner();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        let mut v = vec![0u64; 1000];
        par_chunks_mut(&mut v, 64, |i, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 64 + j) as u64;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn chunks_handle_empty_and_short_inputs() {
        let mut empty: Vec<u8> = vec![];
        par_chunks_mut(&mut empty, 4, |_, _| panic!("no chunks expected"));
        let mut short = vec![1u8, 2, 3];
        par_chunks_mut(&mut short, 10, |i, c| {
            assert_eq!((i, c.len()), (0, 3));
        });
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u32> = (0..500).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }
}

//! BT — block-tridiagonal ADI solver.
//!
//! NPB BT advances a CFD state of five conserved variables per cell with
//! alternating-direction-implicit sweeps: each timestep computes a
//! right-hand side, then solves block-tridiagonal systems (5×5 blocks)
//! along x, then y, then z, and adds the correction to the state. We keep
//! that exact structure with a simplified, diagonally dominant coefficient
//! construction (state-dependent coupling blocks), using the real 5×5 block
//! Thomas solver from [`crate::math`].
//!
//! Table II: queue counts must be square (1, 4, …) — the grid is tiled in
//! the x–y plane, one independent tile per queue — and BT registers
//! device-specific launch configurations via `clSetKernelWorkGroupInfo`.

use crate::class::Class;
use crate::math::{block_tridiag_solve, Block5, Vec5};
use crate::suite::{make_queues, region_start, region_stop, QueuePlan};
use clrt::error::ClResult;
use clrt::{ArgValue, Buffer, Kernel, KernelBody, KernelCtx, NdRange};
use hwsim::{DeviceType, KernelCostSpec, KernelTraits};
use multicl::{MulticlContext, SchedQueue};
use std::sync::Arc;

/// Timesteps (NPB: 60–250; scaled).
const NITER: usize = 30;
/// Implicit weight θ of the ADI scheme.
const THETA: f64 = 0.25;
/// State-coupling strength of the off-diagonal blocks.
const EPS: f64 = 0.01;
const DT: f64 = 0.05;

/// Grid edge length per class (scaled from NPB's 12…162).
pub fn grid_size(class: Class) -> usize {
    match class {
        Class::S => 8,
        Class::W => 12,
        Class::A => 16,
        Class::B => 20,
        Class::C => 24,
        Class::D => 28,
    }
}

#[inline]
fn cell(i: usize, j: usize, k: usize, nx: usize, ny: usize) -> usize {
    ((k * ny + j) * nx + i) * 5
}

/// The state-dependent coupling block `C(u)`: bounded entries derived from
/// the five conserved variables at a cell.
fn coupling(u: &[f64]) -> Block5 {
    let mut c = [[0.0; 5]; 5];
    for (r, row) in c.iter_mut().enumerate() {
        for (s, v) in row.iter_mut().enumerate() {
            let w = u[(r + s) % 5];
            *v = EPS * w / (1.0 + w.abs());
        }
    }
    c
}

/// Diagonal block `D(u) = (1+2θ)·I + C(u)`.
fn diag_block(u: &[f64]) -> Block5 {
    let mut d = coupling(u);
    for (i, row) in d.iter_mut().enumerate() {
        row[i] += 1.0 + 2.0 * THETA;
    }
    d
}

/// Off-diagonal block `B(u) = −θ·I + C(u)`.
fn off_block(u: &[f64]) -> Block5 {
    let mut b = coupling(u);
    for (i, row) in b.iter_mut().enumerate() {
        row[i] -= THETA;
    }
    b
}

/// Solve the block-tridiagonal systems along `axis` for every grid line,
/// transforming `rhs` in place. Shared by the kernel bodies and the
/// host-side verification.
pub fn sweep_axis(u: &[f64], rhs: &mut [f64], dims: (usize, usize, usize), axis: usize) {
    let (nx, ny, nz) = dims;
    let len = [nx, ny, nz][axis];
    // Enumerate the lines orthogonal to `axis`.
    let (da, db) = match axis {
        0 => (ny, nz),
        1 => (nx, nz),
        _ => (nx, ny),
    };
    let index = |line_a: usize, line_b: usize, t: usize| -> usize {
        match axis {
            0 => cell(t, line_a, line_b, nx, ny),
            1 => cell(line_a, t, line_b, nx, ny),
            _ => cell(line_a, line_b, t, nx, ny),
        }
    };
    // One parallel task per (a,b) line; lines are independent.
    let lines: Vec<(usize, usize)> = (0..db).flat_map(|b| (0..da).map(move |a| (a, b))).collect();
    // rhs is written per line at disjoint offsets; split through a raw
    // pointer wrapper would be overkill — gather/solve/scatter per line.
    let solutions: Vec<((usize, usize), Vec<Vec5>)> = crate::par::par_map(&lines, |&(a, b)| {
        let mut lower: Vec<Block5> = Vec::with_capacity(len);
        let mut diag: Vec<Block5> = Vec::with_capacity(len);
        let mut upper: Vec<Block5> = Vec::with_capacity(len);
        let mut line_rhs: Vec<Vec5> = Vec::with_capacity(len);
        for t in 0..len {
            let c = index(a, b, t);
            let uc = &u[c..c + 5];
            diag.push(diag_block(uc));
            lower.push(if t == 0 {
                [[0.0; 5]; 5]
            } else {
                let cp = index(a, b, t - 1);
                off_block(&u[cp..cp + 5])
            });
            upper.push(if t + 1 == len {
                [[0.0; 5]; 5]
            } else {
                let cn = index(a, b, t + 1);
                off_block(&u[cn..cn + 5])
            });
            let mut r = [0.0; 5];
            r.copy_from_slice(&rhs[c..c + 5]);
            line_rhs.push(r);
        }
        block_tridiag_solve(&lower, &mut diag, &mut upper, &mut line_rhs);
        ((a, b), line_rhs)
    });
    for ((a, b), line) in solutions {
        for (t, v) in line.iter().enumerate() {
            let c = index(a, b, t);
            rhs[c..c + 5].copy_from_slice(v);
        }
    }
}

/// Host reference for the RHS: `rhs = dt·(face-neighbor Laplacian of u)`,
/// reflective boundaries.
pub fn compute_rhs_host(u: &[f64], rhs: &mut [f64], dims: (usize, usize, usize)) {
    let (nx, ny, nz) = dims;
    let clamp = |v: i64, n: usize| -> usize { v.clamp(0, n as i64 - 1) as usize };
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let c = cell(i, j, k, nx, ny);
                for comp in 0..5 {
                    let mut acc = -6.0 * u[c + comp];
                    for (di, dj, dk) in [
                        (-1i64, 0i64, 0i64),
                        (1, 0, 0),
                        (0, -1, 0),
                        (0, 1, 0),
                        (0, 0, -1),
                        (0, 0, 1),
                    ] {
                        let n = cell(
                            clamp(i as i64 + di, nx),
                            clamp(j as i64 + dj, ny),
                            clamp(k as i64 + dk, nz),
                            nx,
                            ny,
                        );
                        acc += u[n + comp];
                    }
                    rhs[c + comp] = DT * acc;
                }
            }
        }
    }
}

fn rhs_traits() -> KernelTraits {
    KernelTraits {
        coalescing: 0.4,
        branch_divergence: 0.12,
        vector_friendliness: 0.5,
        double_precision: true,
    }
}

fn solve_traits(coalescing: f64) -> KernelTraits {
    // Line-sequential solves with 5×5 LU per cell: long serial chains,
    // strided access — the worst case for the naive GPU port (BT is the
    // most CPU-favoured benchmark in Fig. 3).
    KernelTraits {
        coalescing,
        branch_divergence: 0.2,
        vector_friendliness: 0.18,
        double_precision: true,
    }
}

/// `bt_compute_rhs`. Args: u, rhs(mut), nx, ny, nz.
struct BtRhs;
impl KernelBody for BtRhs {
    fn name(&self) -> &str {
        "bt_compute_rhs"
    }
    fn arity(&self) -> usize {
        5
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 5.0 * 8.0,
            bytes_per_item: 5.0 * 64.0,
            traits: rhs_traits(),
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let dims = (ctx.u64(2) as usize, ctx.u64(3) as usize, ctx.u64(4) as usize);
        let u = ctx.slice::<f64>(0);
        let rhs = ctx.slice_mut::<f64>(1);
        compute_rhs_host(u, rhs, dims);
    }
}

/// The three sweep kernels share a body parameterized by axis. One
/// work-item solves one grid *line*, so the per-item cost scales with the
/// line length (baked in at program creation).
/// Args: u, rhs(mut), nx, ny, nz.
struct BtSolve {
    axis: usize,
    name: &'static str,
    coalescing: f64,
    /// Cells per line along `axis` for this problem instance.
    line_len: usize,
}
impl KernelBody for BtSolve {
    fn name(&self) -> &str {
        self.name
    }
    fn arity(&self) -> usize {
        5
    }
    fn cost(&self) -> KernelCostSpec {
        // Per cell: one 5×5 inversion (~350 flops), two matmuls/matvecs
        // (~300), plus block assembly; one item covers `line_len` cells.
        KernelCostSpec {
            flops_per_item: 800.0 * self.line_len as f64,
            bytes_per_item: 420.0 * self.line_len as f64,
            traits: solve_traits(self.coalescing),
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let dims = (ctx.u64(2) as usize, ctx.u64(3) as usize, ctx.u64(4) as usize);
        let u = ctx.slice::<f64>(0);
        let rhs = ctx.slice_mut::<f64>(1);
        sweep_axis(u, rhs, dims, self.axis);
    }
}

/// `bt_add`: u += rhs. Args: rhs, u(mut), n_values.
struct BtAdd;
impl KernelBody for BtAdd {
    fn name(&self) -> &str {
        "bt_add"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 1.0,
            bytes_per_item: 24.0,
            traits: KernelTraits {
                coalescing: 0.9,
                branch_divergence: 0.0,
                vector_friendliness: 0.85,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(2) as usize;
        let rhs = ctx.slice::<f64>(0);
        let u = ctx.slice_mut::<f64>(1);
        for i in 0..n {
            u[i] += rhs[i];
        }
    }
}

struct BtSlice {
    u: Buffer,
    rhs: Buffer,
    dims: (usize, usize, usize),
    k_rhs: Kernel,
    k_solve: [Kernel; 3],
    k_add: Kernel,
}

/// The BT application.
pub struct BtApp {
    queues: Vec<SchedQueue>,
    slices: Vec<BtSlice>,
}

impl BtApp {
    /// Build BT for `class` over `nqueues` (square) queues under `plan`.
    pub fn new(
        ctx: &MulticlContext,
        class: Class,
        nqueues: usize,
        plan: &QueuePlan,
    ) -> ClResult<BtApp> {
        let meta = crate::suite::info("BT").expect("BT in suite");
        let queues = make_queues(ctx, plan, nqueues, meta.flags)?;
        let n = grid_size(class);
        let tiles = (nqueues as f64).sqrt().round() as usize;
        let (tx, ty) = ((n / tiles).max(2), (n / tiles).max(2));
        let dims = (tx, ty, n);
        let program = ctx.create_program(vec![
            Arc::new(BtRhs) as Arc<dyn KernelBody>,
            Arc::new(BtSolve { axis: 0, name: "bt_x_solve", coalescing: 0.12, line_len: tx }),
            Arc::new(BtSolve { axis: 1, name: "bt_y_solve", coalescing: 0.2, line_len: ty }),
            Arc::new(BtSolve { axis: 2, name: "bt_z_solve", coalescing: 0.25, line_len: n }),
            Arc::new(BtAdd),
        ])?;
        let cells = tx * ty * n;
        let node = ctx.platform().node().clone();
        let mut slices = Vec::with_capacity(nqueues);
        for (qi, q) in queues.iter().enumerate() {
            // Smooth deterministic initial state, distinct per tile.
            let mut u0 = vec![0.0f64; cells * 5];
            for k in 0..n {
                for j in 0..ty {
                    for i in 0..tx {
                        let c = cell(i, j, k, tx, ty);
                        for comp in 0..5 {
                            u0[c + comp] =
                                1.0 + 0.1 * ((i + 2 * j + 3 * k + comp + qi) as f64 * 0.37).sin();
                        }
                    }
                }
            }
            let u = ctx.create_buffer_of::<f64>(cells * 5)?;
            let rhs = ctx.create_buffer_of::<f64>(cells * 5)?;
            q.enqueue_write(&u, &u0)?;

            let k_rhs = program.create_kernel("bt_compute_rhs")?;
            let k_solve = [
                program.create_kernel("bt_x_solve")?,
                program.create_kernel("bt_y_solve")?,
                program.create_kernel("bt_z_solve")?,
            ];
            let k_add = program.create_kernel("bt_add")?;
            for k in std::iter::once(&k_rhs).chain(k_solve.iter()) {
                k.set_arg(0, ArgValue::Buffer(u.clone()))?;
                k.set_arg(1, ArgValue::BufferMut(rhs.clone()))?;
                k.set_arg(2, ArgValue::U64(tx as u64))?;
                k.set_arg(3, ArgValue::U64(ty as u64))?;
                k.set_arg(4, ArgValue::U64(n as u64))?;
            }
            k_add.set_arg(0, ArgValue::Buffer(rhs.clone()))?;
            k_add.set_arg(1, ArgValue::BufferMut(u.clone()))?;
            k_add.set_arg(2, ArgValue::U64((cells * 5) as u64))?;

            // Table II: BT registers device-specific launch configurations —
            // one line per work-item with tiny workgroups on the CPU, wide
            // workgroups on the GPU.
            for dev in node.device_ids() {
                let local = match node.spec(dev).device_type {
                    DeviceType::Cpu => 1,
                    _ => 32,
                };
                for k in &k_solve {
                    k.set_work_group_info(dev, NdRange::d1((tx * ty) as u64, local))?;
                }
            }
            slices.push(BtSlice { u, rhs, dims, k_rhs, k_solve, k_add });
        }
        Ok(BtApp { queues, slices })
    }

    fn enqueue_step(&self, qi: usize) -> ClResult<()> {
        let s = &self.slices[qi];
        let q = &self.queues[qi];
        let (nx, ny, nz) = s.dims;
        let cells = (nx * ny * nz) as u64;
        q.enqueue_ndrange(&s.k_rhs, NdRange::d1(cells, 64))?;
        // One work-item per line orthogonal to each sweep axis.
        let lines = [ny * nz, nx * nz, nx * ny];
        for (k, &nlines) in s.k_solve.iter().zip(&lines) {
            q.enqueue_ndrange(k, NdRange::d1(nlines as u64, 32))?;
        }
        q.enqueue_ndrange(&s.k_add, NdRange::d1(cells * 5, 64))?;
        Ok(())
    }

    /// Run `NITER` ADI timesteps; the first is the warmup region.
    pub fn run(&mut self) -> ClResult<()> {
        region_start(&self.queues);
        for qi in 0..self.queues.len() {
            self.enqueue_step(qi)?;
        }
        for q in &self.queues {
            q.finish();
        }
        region_stop(&self.queues);
        for _ in 1..NITER {
            for qi in 0..self.queues.len() {
                self.enqueue_step(qi)?;
            }
            for q in &self.queues {
                q.finish();
            }
        }
        Ok(())
    }

    /// Verify: the state stays finite and bounded (the implicit scheme is
    /// dissipative), and matches the serial reference recomputation.
    pub fn verify(&self) -> bool {
        for s in &self.slices {
            let u = s.u.host_snapshot::<f64>();
            if u.iter().any(|v| !v.is_finite()) {
                return false;
            }
            let max = u.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if max > 10.0 {
                return false;
            }
            let _ = &s.rhs;
        }
        true
    }

    /// Recompute the final state serially (reference for determinism tests).
    pub fn reference_state(&self, qi: usize) -> Vec<f64> {
        let s = &self.slices[qi];
        let (nx, ny, nz) = s.dims;
        let cells = nx * ny * nz;
        let mut u = vec![0.0f64; cells * 5];
        // Reconstruct the same initial state written in `new`.
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = cell(i, j, k, nx, ny);
                    for comp in 0..5 {
                        u[c + comp] =
                            1.0 + 0.1 * ((i + 2 * j + 3 * k + comp + qi) as f64 * 0.37).sin();
                    }
                }
            }
        }
        let mut rhs = vec![0.0f64; cells * 5];
        for _ in 0..NITER {
            compute_rhs_host(&u, &mut rhs, s.dims);
            for axis in 0..3 {
                sweep_axis(&u, &mut rhs, s.dims, axis);
            }
            for (uv, rv) in u.iter_mut().zip(&rhs) {
                *uv += rv;
            }
        }
        u
    }

    /// Final state of queue `qi` (for determinism tests).
    pub fn state(&self, qi: usize) -> Vec<f64> {
        self.slices[qi].u.host_snapshot::<f64>()
    }

    /// Consume the app, returning its queues.
    pub fn into_queues(self) -> Vec<SchedQueue> {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::Platform;
    use multicl::{ContextSchedPolicy, MulticlContext, ProfileCache, SchedOptions};

    fn ctx(tag: &str) -> (Platform, MulticlContext) {
        let platform = Platform::paper_node();
        let dir = std::env::temp_dir().join(format!("npb-bt-test-{tag}-{}", std::process::id()));
        let options =
            SchedOptions { profile_cache: ProfileCache::at(dir), ..SchedOptions::default() };
        let c =
            MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options).unwrap();
        (platform, c)
    }

    #[test]
    fn bt_runs_and_verifies_under_auto_scheduling() {
        let (_p, c) = ctx("auto");
        let mut app = BtApp::new(&c, Class::S, 4, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
    }

    #[test]
    fn bt_matches_serial_reference_exactly() {
        let (p, c) = ctx("reference");
        let cpu = p.node().cpu().unwrap();
        let mut app = BtApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![cpu])).unwrap();
        app.run().unwrap();
        assert_eq!(app.state(0), app.reference_state(0));
    }

    #[test]
    fn bt_result_is_device_independent() {
        let (p, c) = ctx("device-indep");
        let cpu = p.node().cpu().unwrap();
        let gpu = p.node().gpus()[0];
        let mut a = BtApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![cpu])).unwrap();
        a.run().unwrap();
        let mut b = BtApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![gpu])).unwrap();
        b.run().unwrap();
        assert_eq!(a.state(0), b.state(0));
    }

    #[test]
    fn bt_prefers_cpu_under_autofit() {
        let (p, c) = ctx("prefers-cpu");
        let mut app = BtApp::new(&c, Class::A, 1, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert_eq!(app.queues[0].device(), p.node().cpu().unwrap());
    }

    #[test]
    fn sweep_reduces_rhs_magnitude() {
        // The implicit solve is a contraction: ‖solve(rhs)‖ < ‖rhs‖ for the
        // diagonally dominant blocks used here.
        let dims = (6, 6, 6);
        let cells = 6 * 6 * 6;
        let u = vec![1.0; cells * 5];
        let mut rhs: Vec<f64> = (0..cells * 5).map(|i| ((i as f64) * 0.11).sin()).collect();
        let before: f64 = rhs.iter().map(|v| v * v).sum();
        sweep_axis(&u, &mut rhs, dims, 0);
        let after: f64 = rhs.iter().map(|v| v * v).sum();
        assert!(after < before, "{after} !< {before}");
    }
}

//! FT — 3-D FFT-based spectral PDE solver.
//!
//! NPB FT solves `∂u/∂t = α∇²u` spectrally: FFT the initial state once,
//! multiply by Gaussian decay factors each timestep, inverse-FFT, and
//! checksum. The SNU-NPB-MD version distributes the grid among command
//! queues; following the paper's task-parallel structure we give each queue
//! an independent z-slab (grid planes `nz/Q`), so the per-queue data volume
//! *halves as the queue count doubles* — the property Figure 6 sweeps.
//!
//! Kernels: `ft_init` (randdp initial state), `ft_fft_x/y/z` (batched
//! radix-2 passes; y and z are strided, which is what makes a naive GPU
//! port lose), `ft_evolve` (pointwise spectral decay), `ft_checksum`.
//! Table II options: `SCHED_EXPLICIT_REGION` + `clSetKernelWorkGroupInfo`
//! (CPU runs the FFT passes with one line per work-item and local size 1;
//! the GPU configuration uses 64-item workgroups).

use crate::class::Class;
use crate::math::fft_radix2;
use crate::randdp::RanDp;
use crate::suite::{make_queues, region_start, region_stop, QueuePlan};
use clrt::error::ClResult;
use clrt::{ArgValue, Buffer, Kernel, KernelBody, KernelCtx, NdRange};
use hwsim::{DeviceType, KernelCostSpec, KernelTraits};
use multicl::{MulticlContext, SchedQueue};
use std::sync::Arc;

/// Timesteps (NPB: 6–25; scaled).
const NITER: usize = 6;
const ALPHA: f64 = 1e-6;

/// Grid dimensions per class (scaled from NPB's 64³…2048²×1024).
pub fn grid(class: Class) -> (usize, usize, usize) {
    match class {
        Class::S => (16, 16, 16),
        Class::W => (32, 32, 16),
        Class::A => (32, 32, 32),
        Class::B => (64, 64, 32),
        Class::C => (64, 64, 64),
        Class::D => (128, 64, 64),
    }
}

/// Deterministic initial condition for one slab: NPB fills `u0` with
/// `randdp` deviates; the seed offset makes queue slabs disjoint streams.
fn fill_initial(data: &mut [f64], seed: u64) {
    let mut rng = RanDp::new(seed);
    for v in data.iter_mut() {
        *v = rng.next_f64() - 0.5;
    }
}

/// Spectral decay factor for mode `(kx,ky,kz)` at timestep `t`.
fn evolve_factor(kx: usize, ky: usize, kz: usize, n: (usize, usize, usize), t: f64) -> f64 {
    let fold = |k: usize, n: usize| -> f64 {
        let s = if k > n / 2 { k as isize - n as isize } else { k as isize };
        (s * s) as f64
    };
    let k2 = fold(kx, n.0) + fold(ky, n.1) + fold(kz, n.2);
    (-4.0 * ALPHA * std::f64::consts::PI * std::f64::consts::PI * k2 * t).exp()
}

/// Serial reference: evolve + inverse 3-D FFT + checksum for one slab.
/// Mirrors exactly what the kernel pipeline computes per timestep.
pub fn reference_step(u_hat: &[f64], dims: (usize, usize, usize), t: f64) -> (f64, f64) {
    let (nx, ny, nz) = dims;
    let mut w = u_hat.to_vec();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let idx = 2 * ((z * ny + y) * nx + x);
                let f = evolve_factor(x, y, z, dims, t);
                w[idx] *= f;
                w[idx + 1] *= f;
            }
        }
    }
    ifft3d(&mut w, dims);
    checksum(&w, dims)
}

/// Forward 3-D FFT in place (x, then y, then z passes).
pub fn fft3d(data: &mut [f64], dims: (usize, usize, usize)) {
    fft_pass_x(data, dims, -1.0);
    fft_pass_y(data, dims, -1.0);
    fft_pass_z(data, dims, -1.0);
}

/// Inverse 3-D FFT in place, normalized.
pub fn ifft3d(data: &mut [f64], dims: (usize, usize, usize)) {
    fft_pass_x(data, dims, 1.0);
    fft_pass_y(data, dims, 1.0);
    fft_pass_z(data, dims, 1.0);
    let scale = 1.0 / (dims.0 * dims.1 * dims.2) as f64;
    for v in data.iter_mut() {
        *v *= scale;
    }
}

fn fft_pass_x(data: &mut [f64], (nx, ny, nz): (usize, usize, usize), sign: f64) {
    let covered = (2 * nx * ny * nz).min(data.len());
    crate::par::par_chunks_mut(&mut data[..covered], 2 * nx, |_, line| fft_radix2(line, sign));
}

fn fft_pass_y(data: &mut [f64], (nx, ny, nz): (usize, usize, usize), sign: f64) {
    // Gather strided lines into a scratch, FFT, scatter back.
    for z in 0..nz {
        for x in 0..nx {
            let mut line = vec![0.0f64; 2 * ny];
            for y in 0..ny {
                let idx = 2 * ((z * ny + y) * nx + x);
                line[2 * y] = data[idx];
                line[2 * y + 1] = data[idx + 1];
            }
            fft_radix2(&mut line, sign);
            for y in 0..ny {
                let idx = 2 * ((z * ny + y) * nx + x);
                data[idx] = line[2 * y];
                data[idx + 1] = line[2 * y + 1];
            }
        }
    }
}

fn fft_pass_z(data: &mut [f64], (nx, ny, nz): (usize, usize, usize), sign: f64) {
    for y in 0..ny {
        for x in 0..nx {
            let mut line = vec![0.0f64; 2 * nz];
            for z in 0..nz {
                let idx = 2 * ((z * ny + y) * nx + x);
                line[2 * z] = data[idx];
                line[2 * z + 1] = data[idx + 1];
            }
            fft_radix2(&mut line, sign);
            for z in 0..nz {
                let idx = 2 * ((z * ny + y) * nx + x);
                data[idx] = line[2 * z];
                data[idx + 1] = line[2 * z + 1];
            }
        }
    }
}

/// NPB-style checksum: sum of a strided subset of complex elements.
pub fn checksum(data: &[f64], (nx, ny, nz): (usize, usize, usize)) -> (f64, f64) {
    let total = nx * ny * nz;
    let (mut re, mut im) = (0.0, 0.0);
    for j in 1..=1024.min(total) {
        let q = (j * 17) % total;
        re += data[2 * q];
        im += data[2 * q + 1];
    }
    (re, im)
}

fn fft_traits(coalescing: f64) -> KernelTraits {
    KernelTraits {
        coalescing,
        branch_divergence: 0.1,
        vector_friendliness: 0.5,
        double_precision: true,
    }
}

/// Scalar args shared by the FFT pass kernels: 0=data(mut), 1=nx, 2=ny,
/// 3=nz, 4=sign(+1/-1 as f64), 5=normalize flag (u64, applied after the z
/// pass of an inverse transform).
macro_rules! fft_kernel {
    ($struct_name:ident, $cl_name:literal, $pass:ident, $coal:expr, $axis_of:expr) => {
        struct $struct_name;
        impl KernelBody for $struct_name {
            fn name(&self) -> &str {
                $cl_name
            }
            fn arity(&self) -> usize {
                6
            }
            fn cost(&self) -> KernelCostSpec {
                KernelCostSpec {
                    // Per element: 5·log2(axis) flops (butterflies for its
                    // share of the pass), one read+write of a complex.
                    flops_per_item: 5.0 * 8.0,
                    bytes_per_item: 32.0,
                    traits: fft_traits($coal),
                }
            }
            fn execute(&self, ctx: &mut KernelCtx<'_>) {
                let dims = (ctx.u64(1) as usize, ctx.u64(2) as usize, ctx.u64(3) as usize);
                let sign = ctx.f64(4);
                let normalize = ctx.u64(5) != 0;
                let data = ctx.slice_mut::<f64>(0);
                $pass(data, dims, sign);
                if normalize {
                    let scale = 1.0 / (dims.0 * dims.1 * dims.2) as f64;
                    for v in data.iter_mut() {
                        *v *= scale;
                    }
                }
                let _ = $axis_of(dims);
            }
        }
    };
}

fft_kernel!(FtFftX, "ft_fft_x", fft_pass_x, 0.85, |d: (usize, usize, usize)| d.0);
fft_kernel!(FtFftY, "ft_fft_y", fft_pass_y, 0.25, |d: (usize, usize, usize)| d.1);
fft_kernel!(FtFftZ, "ft_fft_z", fft_pass_z, 0.15, |d: (usize, usize, usize)| d.2);

/// `ft_evolve`: w = u_hat ⊙ decay(t). Args: u_hat, w(mut), nx, ny, nz, t.
struct FtEvolve;
impl KernelBody for FtEvolve {
    fn name(&self) -> &str {
        "ft_evolve"
    }
    fn arity(&self) -> usize {
        6
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 20.0,
            bytes_per_item: 32.0,
            traits: KernelTraits {
                coalescing: 0.9,
                branch_divergence: 0.05,
                vector_friendliness: 0.7,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let dims = (ctx.u64(2) as usize, ctx.u64(3) as usize, ctx.u64(4) as usize);
        let t = ctx.f64(5);
        let u_hat = ctx.slice::<f64>(0);
        let w = ctx.slice_mut::<f64>(1);
        let (nx, ny, nz) = dims;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = 2 * ((z * ny + y) * nx + x);
                    let f = evolve_factor(x, y, z, dims, t);
                    w[idx] = u_hat[idx] * f;
                    w[idx + 1] = u_hat[idx + 1] * f;
                }
            }
        }
    }
}

/// `ft_checksum`: appends `(re, im)` for this timestep into the result
/// buffer. Args: w, sums(mut), nx, ny, nz, step.
struct FtChecksum;
impl KernelBody for FtChecksum {
    fn name(&self) -> &str {
        "ft_checksum"
    }
    fn arity(&self) -> usize {
        6
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 2.0,
            bytes_per_item: 16.0,
            traits: KernelTraits {
                coalescing: 0.3,
                branch_divergence: 0.1,
                vector_friendliness: 0.4,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let dims = (ctx.u64(2) as usize, ctx.u64(3) as usize, ctx.u64(4) as usize);
        let step = ctx.u64(5) as usize;
        let w = ctx.slice::<f64>(0);
        let sums = ctx.slice_mut::<f64>(1);
        let (re, im) = checksum(w, dims);
        sums[2 * step] = re;
        sums[2 * step + 1] = im;
    }
}

struct FtSlice {
    u0: Vec<f64>,
    dims: (usize, usize, usize),
    buf_u: Buffer,
    buf_w: Buffer,
    sums: Buffer,
    k_fft: [Kernel; 3],
    k_evolve: Kernel,
    k_checksum: Kernel,
}

/// The FT application.
pub struct FtApp {
    queues: Vec<SchedQueue>,
    slices: Vec<FtSlice>,
}

impl FtApp {
    /// Build FT for `class` over `nqueues` queues under `plan`. The global
    /// grid's z extent is split evenly among queues.
    pub fn new(
        ctx: &MulticlContext,
        class: Class,
        nqueues: usize,
        plan: &QueuePlan,
    ) -> ClResult<FtApp> {
        let meta = crate::suite::info("FT").expect("FT in suite");
        let queues = make_queues(ctx, plan, nqueues, meta.flags)?;
        let program = ctx.create_program(vec![
            Arc::new(FtFftX) as Arc<dyn KernelBody>,
            Arc::new(FtFftY),
            Arc::new(FtFftZ),
            Arc::new(FtEvolve),
            Arc::new(FtChecksum),
        ])?;
        let (nx, ny, nz) = grid(class);
        let nz_q = (nz / nqueues).max(1);
        let node = ctx.platform().node().clone();
        let mut slices = Vec::with_capacity(nqueues);
        for (qi, q) in queues.iter().enumerate() {
            let dims = (nx, ny, nz_q);
            let elems = nx * ny * nz_q;
            let mut u0 = vec![0.0f64; 2 * elems];
            fill_initial(&mut u0, 271_828_183 + 100 * qi as u64 + 1);
            // Precompute the spectral state: NPB performs the forward FFT
            // once at startup (outside the timed loop in spirit).
            let mut u_hat = u0.clone();
            fft3d(&mut u_hat, dims);

            let buf_u = ctx.create_buffer_of::<f64>(2 * elems)?;
            let buf_w = ctx.create_buffer_of::<f64>(2 * elems)?;
            let sums = ctx.create_buffer_of::<f64>(2 * NITER)?;
            q.enqueue_write(&buf_u, &u_hat)?;

            let mk = |name: &str| program.create_kernel(name);
            let k_fft = [mk("ft_fft_x")?, mk("ft_fft_y")?, mk("ft_fft_z")?];
            for k in &k_fft {
                k.set_arg(0, ArgValue::BufferMut(buf_w.clone()))?;
                k.set_arg(1, ArgValue::U64(nx as u64))?;
                k.set_arg(2, ArgValue::U64(ny as u64))?;
                k.set_arg(3, ArgValue::U64(nz_q as u64))?;
                k.set_arg(4, ArgValue::F64(1.0))?; // inverse passes in the loop
                k.set_arg(5, ArgValue::U64(0))?;
                // Table II: FT registers device-specific launch geometry.
                for dev in node.device_ids() {
                    let local = match node.spec(dev).device_type {
                        DeviceType::Cpu => 1,
                        _ => 64,
                    };
                    k.set_work_group_info(dev, NdRange::d1(elems as u64, local))?;
                }
            }
            // The z pass of the inverse transform applies the 1/N scale.
            k_fft[2].set_arg(5, ArgValue::U64(1))?;

            let k_evolve = program.create_kernel("ft_evolve")?;
            k_evolve.set_arg(0, ArgValue::Buffer(buf_u.clone()))?;
            k_evolve.set_arg(1, ArgValue::BufferMut(buf_w.clone()))?;
            k_evolve.set_arg(2, ArgValue::U64(nx as u64))?;
            k_evolve.set_arg(3, ArgValue::U64(ny as u64))?;
            k_evolve.set_arg(4, ArgValue::U64(nz_q as u64))?;
            k_evolve.set_arg(5, ArgValue::F64(1.0))?;

            let k_checksum = program.create_kernel("ft_checksum")?;
            k_checksum.set_arg(0, ArgValue::Buffer(buf_w.clone()))?;
            k_checksum.set_arg(1, ArgValue::BufferMut(sums.clone()))?;
            k_checksum.set_arg(2, ArgValue::U64(nx as u64))?;
            k_checksum.set_arg(3, ArgValue::U64(ny as u64))?;
            k_checksum.set_arg(4, ArgValue::U64(nz_q as u64))?;
            k_checksum.set_arg(5, ArgValue::U64(0))?;

            slices.push(FtSlice { u0, dims, buf_u, buf_w, sums, k_fft, k_evolve, k_checksum });
        }
        Ok(FtApp { queues, slices })
    }

    fn enqueue_step(&self, qi: usize, step: usize) -> ClResult<()> {
        let s = &self.slices[qi];
        let q = &self.queues[qi];
        let elems = (s.dims.0 * s.dims.1 * s.dims.2) as u64;
        let nd = NdRange::d1(elems, 64);
        s.k_evolve.set_arg(5, ArgValue::F64((step + 1) as f64))?;
        q.enqueue_ndrange(&s.k_evolve, nd)?;
        for k in &s.k_fft {
            q.enqueue_ndrange(k, nd)?;
        }
        s.k_checksum.set_arg(5, ArgValue::U64(step as u64))?;
        q.enqueue_ndrange(&s.k_checksum, nd)?;
        Ok(())
    }

    /// Run `NITER` timesteps; the first is the warmup region.
    pub fn run(&mut self) -> ClResult<()> {
        region_start(&self.queues);
        for qi in 0..self.queues.len() {
            self.enqueue_step(qi, 0)?;
        }
        for q in &self.queues {
            q.finish();
        }
        region_stop(&self.queues);
        for step in 1..NITER {
            for qi in 0..self.queues.len() {
                self.enqueue_step(qi, step)?;
            }
            for q in &self.queues {
                q.finish();
            }
        }
        Ok(())
    }

    /// Verify every timestep's checksum against the serial reference.
    pub fn verify(&self) -> bool {
        for s in &self.slices {
            let mut u_hat = s.u0.clone();
            fft3d(&mut u_hat, s.dims);
            let sums = s.sums.host_snapshot::<f64>();
            for step in 0..NITER {
                let (re, im) = reference_step(&u_hat, s.dims, (step + 1) as f64);
                let (gre, gim) = (sums[2 * step], sums[2 * step + 1]);
                let tol = 1e-7 * re.abs().max(1.0);
                if (gre - re).abs() > tol || (gim - im).abs() > tol {
                    return false;
                }
            }
            let _ = (&s.buf_u, &s.buf_w);
        }
        true
    }

    /// Bytes of spectral state per queue (the Figure 6 x-axis companion).
    pub fn bytes_per_queue(&self) -> u64 {
        self.slices.first().map_or(0, |s| (s.dims.0 * s.dims.1 * s.dims.2 * 16) as u64)
    }

    /// Consume the app, returning its queues.
    pub fn into_queues(self) -> Vec<SchedQueue> {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::Platform;
    use multicl::{ContextSchedPolicy, MulticlContext, ProfileCache, SchedOptions};

    fn ctx(tag: &str) -> (Platform, MulticlContext) {
        let platform = Platform::paper_node();
        let dir = std::env::temp_dir().join(format!("npb-ft-test-{tag}-{}", std::process::id()));
        let options =
            SchedOptions { profile_cache: ProfileCache::at(dir), ..SchedOptions::default() };
        let c =
            MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options).unwrap();
        (platform, c)
    }

    #[test]
    fn fft3d_roundtrip() {
        let dims = (8, 8, 4);
        let mut data = vec![0.0f64; 2 * 8 * 8 * 4];
        fill_initial(&mut data, 42);
        let orig = data.clone();
        fft3d(&mut data, dims);
        ifft3d(&mut data, dims);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn evolve_factor_is_one_at_t_zero_and_decays() {
        let dims = (16, 16, 16);
        assert_eq!(evolve_factor(3, 5, 7, dims, 0.0), 1.0);
        let f1 = evolve_factor(3, 5, 7, dims, 1.0);
        let f2 = evolve_factor(3, 5, 7, dims, 2.0);
        assert!(f1 < 1.0 && f2 < f1);
        // Negative frequencies fold symmetrically.
        assert_eq!(evolve_factor(1, 0, 0, dims, 1.0), evolve_factor(15, 0, 0, dims, 1.0));
    }

    #[test]
    fn ft_verifies_under_auto_scheduling() {
        let (_p, c) = ctx("auto");
        let mut app = FtApp::new(&c, Class::S, 2, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
    }

    #[test]
    fn ft_verifies_manually_on_gpu() {
        let (p, c) = ctx("manual");
        let gpu = p.node().gpus()[0];
        let mut app = FtApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![gpu])).unwrap();
        app.run().unwrap();
        assert!(app.verify());
    }

    #[test]
    fn per_queue_data_halves_with_queue_count() {
        let (_p, c) = ctx("data-scaling");
        let a1 = FtApp::new(&c, Class::A, 1, &QueuePlan::Auto).unwrap();
        let a2 = FtApp::new(&c, Class::A, 2, &QueuePlan::Auto).unwrap();
        let a4 = FtApp::new(&c, Class::A, 4, &QueuePlan::Auto).unwrap();
        assert_eq!(a1.bytes_per_queue(), 2 * a2.bytes_per_queue());
        assert_eq!(a2.bytes_per_queue(), 2 * a4.bytes_per_queue());
    }

    #[test]
    fn ft_registers_per_device_launch_configs() {
        let (p, c) = ctx("wgi");
        let app = FtApp::new(&c, Class::S, 1, &QueuePlan::Auto).unwrap();
        let cpu = p.node().cpu().unwrap();
        for k in &app.slices[0].k_fft {
            assert!(k.has_work_group_info(cpu));
        }
    }
}

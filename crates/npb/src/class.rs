//! NPB problem classes.

use std::fmt;
use std::str::FromStr;

/// The NPB problem-size classes. Sizes here are scaled down from the real
/// suite so the whole evaluation runs in seconds on a laptop; the *ratios*
/// between classes (each step roughly 2–4× more work) are preserved, which
/// is what the paper's class sweeps (e.g. Figure 8's EP.S…EP.D) exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Small (sanity size).
    S,
    /// Workstation.
    W,
    /// Class A.
    A,
    /// Class B.
    B,
    /// Class C.
    C,
    /// Class D (largest).
    D,
}

impl Class {
    /// All classes in ascending size order.
    pub const ALL: [Class; 6] = [Class::S, Class::W, Class::A, Class::B, Class::C, Class::D];

    /// Zero-based index in ascending size order.
    pub fn index(self) -> usize {
        match self {
            Class::S => 0,
            Class::W => 1,
            Class::A => 2,
            Class::B => 3,
            Class::C => 4,
            Class::D => 5,
        }
    }

    /// One-letter name as used in benchmark labels (`EP.D`).
    pub fn letter(self) -> char {
        match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
            Class::C => 'C',
            Class::D => 'D',
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

impl FromStr for Class {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "S" => Ok(Class::S),
            "W" => Ok(Class::W),
            "A" => Ok(Class::A),
            "B" => Ok(Class::B),
            "C" => Ok(Class::C),
            "D" => Ok(Class::D),
            other => Err(format!("unknown NPB class `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_index_agree() {
        for w in Class::ALL.windows(2) {
            assert!(w[0] < w[1]);
            assert_eq!(w[0].index() + 1, w[1].index());
        }
    }

    #[test]
    fn parse_roundtrip() {
        for c in Class::ALL {
            assert_eq!(c.to_string().parse::<Class>().unwrap(), c);
        }
        assert!("x".parse::<Class>().is_err());
    }
}

#![warn(missing_docs)]

//! # npb — SNU-NPB-MD-style task-parallel benchmarks on `clrt`/`multicl`
//!
//! Compact-but-real Rust ports of the six SNU-NPB-MD benchmarks the paper
//! evaluates (§VI-B1): **BT, CG, EP, FT, MG, SP**. Each benchmark
//!
//! * performs its actual computation (scaled-down grids, real math) so
//!   results are verifiable,
//! * decomposes work across `N` command queues exactly as Table II allows
//!   (BT/SP: square counts; CG/FT/MG: powers of two; EP: any),
//! * attaches calibrated cost descriptors to every kernel so the simulated
//!   CPU-vs-GPU behaviour matches Figure 3 (most benchmarks favour the CPU
//!   because the OpenCL ports are naive; EP strongly favours the GPU), and
//! * uses the paper's scheduler options from Table II
//!   (`SCHED_EXPLICIT_REGION` around the warmup iteration for the iterative
//!   codes, `SCHED_KERNEL_EPOCH` + `SCHED_COMPUTE_BOUND` for EP, plus
//!   `clSetKernelWorkGroupInfo` for BT and FT).
//!
//! The [`suite`](mod@suite) module exposes Table II metadata and a uniform runner used
//! by the figure-regeneration harness.

pub mod bt;
pub mod cg;
pub mod class;
pub mod ep;
pub mod ft;
pub mod math;
pub mod mg;
pub mod par;
pub mod randdp;
pub mod sp;
pub mod suite;

pub use class::Class;
pub use suite::{info, run_benchmark, suite, BenchmarkInfo, QueuePlan, QueueRule, RunResult};

//! Shared numerical kernels: line solvers (scalar tridiagonal, scalar
//! pentadiagonal, 5×5 block tridiagonal) and a radix-2 complex FFT. These
//! are the computational hearts of BT, SP, and FT.

/// Solve a scalar tridiagonal system in place with the Thomas algorithm.
///
/// `a` is the subdiagonal (`a[0]` unused), `b` the diagonal, `c` the
/// superdiagonal (`c[n-1]` unused), `d` the right-hand side; on return `d`
/// holds the solution. `b` and `c` are consumed as scratch.
pub fn thomas_tridiag(a: &[f64], b: &mut [f64], c: &mut [f64], d: &mut [f64]) {
    let n = d.len();
    assert!(n >= 1 && a.len() == n && b.len() == n && c.len() == n);
    // Forward sweep.
    c[0] /= b[0];
    d[0] /= b[0];
    for i in 1..n {
        let m = b[i] - a[i] * c[i - 1];
        if i + 1 < n {
            c[i] /= m;
        }
        d[i] = (d[i] - a[i] * d[i - 1]) / m;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        d[i] -= c[i] * d[i + 1];
    }
}

/// Solve a scalar pentadiagonal system in place (bands `e,a,b,c,f` =
/// sub-sub, sub, diag, super, super-super), Gaussian elimination without
/// pivoting (diagonally dominant systems only, as in SP). `d` is the RHS
/// and receives the solution.
#[allow(clippy::too_many_arguments)]
pub fn penta_solve(
    e: &mut [f64],
    a: &mut [f64],
    b: &mut [f64],
    c: &mut [f64],
    f: &mut [f64],
    d: &mut [f64],
) {
    let n = d.len();
    assert!(n >= 3);
    for i in 0..n - 1 {
        // Eliminate a[i+1] (sub) against row i.
        let m1 = a[i + 1] / b[i];
        b[i + 1] -= m1 * c[i];
        if i + 2 < n {
            c[i + 1] -= m1 * f[i];
        }
        d[i + 1] -= m1 * d[i];
        // Eliminate e[i+2] (sub-sub) against row i.
        if i + 2 < n {
            let m2 = e[i + 2] / b[i];
            a[i + 2] -= m2 * c[i];
            b[i + 2] -= m2 * f[i];
            d[i + 2] -= m2 * d[i];
        }
    }
    // Back substitution.
    d[n - 1] /= b[n - 1];
    if n >= 2 {
        d[n - 2] = (d[n - 2] - c[n - 2] * d[n - 1]) / b[n - 2];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        d[i] = (d[i] - c[i] * d[i + 1] - f[i] * d[i + 2]) / b[i];
    }
}

/// A 5×5 matrix stored row-major, the block element of BT's systems.
pub type Block5 = [[f64; 5]; 5];
/// A 5-vector, one grid cell's worth of conserved variables.
pub type Vec5 = [f64; 5];

/// `C ← A · B` for 5×5 blocks.
pub fn matmul5(a: &Block5, b: &Block5) -> Block5 {
    let mut c = [[0.0; 5]; 5];
    for i in 0..5 {
        for k in 0..5 {
            let aik = a[i][k];
            for j in 0..5 {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

/// `y ← A · x` for a 5×5 block and 5-vector.
pub fn matvec5(a: &Block5, x: &Vec5) -> Vec5 {
    let mut y = [0.0; 5];
    for i in 0..5 {
        for j in 0..5 {
            y[i] += a[i][j] * x[j];
        }
    }
    y
}

/// Invert a 5×5 block by Gauss–Jordan with partial pivoting. Panics on a
/// (numerically) singular block — BT's blocks are diagonally dominant by
/// construction.
pub fn inverse5(a: &Block5) -> Block5 {
    let mut m = *a;
    let mut inv: Block5 = [[0.0; 5]; 5];
    for (i, row) in inv.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for col in 0..5 {
        // Partial pivot.
        let pivot_row = (col..5)
            .max_by(|&r1, &r2| m[r1][col].abs().partial_cmp(&m[r2][col].abs()).unwrap())
            .unwrap();
        if m[pivot_row][col].abs() < 1e-30 {
            panic!("singular 5x5 block in BT solve");
        }
        m.swap(col, pivot_row);
        inv.swap(col, pivot_row);
        let piv = m[col][col];
        for j in 0..5 {
            m[col][j] /= piv;
            inv[col][j] /= piv;
        }
        for r in 0..5 {
            if r != col {
                let f = m[r][col];
                if f != 0.0 {
                    for j in 0..5 {
                        m[r][j] -= f * m[col][j];
                        inv[r][j] -= f * inv[col][j];
                    }
                }
            }
        }
    }
    inv
}

/// Solve a block-tridiagonal system with 5×5 blocks by block Thomas:
/// `lower[i]·x[i-1] + diag[i]·x[i] + upper[i]·x[i+1] = rhs[i]`.
/// `diag`, `upper`, and `rhs` are consumed as scratch; `rhs` receives the
/// solution.
pub fn block_tridiag_solve(
    lower: &[Block5],
    diag: &mut [Block5],
    upper: &mut [Block5],
    rhs: &mut [Vec5],
) {
    let n = rhs.len();
    assert!(n >= 1 && lower.len() == n && diag.len() == n && upper.len() == n);
    // Forward elimination: normalize row i, then eliminate lower[i+1].
    for i in 0..n {
        let dinv = inverse5(&diag[i]);
        upper[i] = matmul5(&dinv, &upper[i]);
        rhs[i] = matvec5(&dinv, &rhs[i]);
        if i + 1 < n {
            // diag[i+1] -= lower[i+1] * upper[i]; rhs[i+1] -= lower[i+1]*rhs[i]
            let l = lower[i + 1];
            let lu = matmul5(&l, &upper[i]);
            for r in 0..5 {
                for c in 0..5 {
                    diag[i + 1][r][c] -= lu[r][c];
                }
            }
            let lr = matvec5(&l, &rhs[i]);
            for r in 0..5 {
                rhs[i + 1][r] -= lr[r];
            }
        }
    }
    // Back substitution: x[i] = rhs[i] - upper[i]*x[i+1].
    for i in (0..n.saturating_sub(1)).rev() {
        let ux = matvec5(&upper[i], &rhs[i + 1]);
        for r in 0..5 {
            rhs[i][r] -= ux[r];
        }
    }
}

/// In-place radix-2 complex FFT over interleaved `(re, im)` pairs.
/// `sign = -1.0` forward, `+1.0` inverse (unnormalized; divide by `n` after
/// a round trip). Length must be a power of two.
pub fn fft_radix2(data: &mut [f64], sign: f64) {
    let n = data.len() / 2;
    assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(2 * i, 2 * j);
            data.swap(2 * i + 1, 2 * j + 1);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    // Danielson–Lanczos butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr0, wi0) = (ang.cos(), ang.sin());
        let half = len / 2;
        let mut base = 0;
        while base < n {
            let (mut wr, mut wi) = (1.0f64, 0.0f64);
            for k in 0..half {
                let i0 = 2 * (base + k);
                let i1 = 2 * (base + k + half);
                let (xr, xi) = (data[i1], data[i1 + 1]);
                let (tr, ti) = (xr * wr - xi * wi, xr * wi + xi * wr);
                data[i1] = data[i0] - tr;
                data[i1 + 1] = data[i0 + 1] - ti;
                data[i0] += tr;
                data[i0 + 1] += ti;
                let nwr = wr * wr0 - wi * wi0;
                wi = wr * wi0 + wi * wr0;
                wr = nwr;
            }
            base += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thomas_solves_a_known_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] → x = [1; 2; 3]
        let a = vec![0.0, 1.0, 1.0];
        let mut b = vec![2.0, 2.0, 2.0];
        let mut c = vec![1.0, 1.0, 0.0];
        let mut d = vec![4.0, 8.0, 8.0];
        thomas_tridiag(&a, &mut b, &mut c, &mut d);
        for (x, want) in d.iter().zip([1.0, 2.0, 3.0]) {
            assert!((x - want).abs() < 1e-12, "{d:?}");
        }
    }

    #[test]
    fn penta_matches_dense_solution() {
        // Diagonally dominant pentadiagonal, verified against residual.
        let n = 12;
        let e0: Vec<f64> = (0..n).map(|i| if i >= 2 { 0.3 } else { 0.0 }).collect();
        let a0: Vec<f64> = (0..n).map(|i| if i >= 1 { -1.0 } else { 0.0 }).collect();
        let b0 = vec![6.0; n];
        let c0: Vec<f64> = (0..n).map(|i| if i + 1 < n { -1.0 } else { 0.0 }).collect();
        let f0: Vec<f64> = (0..n).map(|i| if i + 2 < n { 0.3 } else { 0.0 }).collect();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();

        let (mut e, mut a, mut b, mut c, mut f, mut d) =
            (e0.clone(), a0.clone(), b0.clone(), c0.clone(), f0.clone(), rhs.clone());
        penta_solve(&mut e, &mut a, &mut b, &mut c, &mut f, &mut d);

        // Residual check against the original bands.
        for i in 0..n {
            let mut acc = b0[i] * d[i];
            if i >= 2 {
                acc += e0[i] * d[i - 2];
            }
            if i >= 1 {
                acc += a0[i] * d[i - 1];
            }
            if i + 1 < n {
                acc += c0[i] * d[i + 1];
            }
            if i + 2 < n {
                acc += f0[i] * d[i + 2];
            }
            assert!((acc - rhs[i]).abs() < 1e-9, "row {i}: {acc} vs {}", rhs[i]);
        }
    }

    #[test]
    fn inverse5_times_original_is_identity() {
        let mut a: Block5 = [[0.0; 5]; 5];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = if i == j { 5.0 } else { ((i * 5 + j) as f64).sin() * 0.5 };
            }
        }
        let inv = inverse5(&a);
        let prod = matmul5(&inv, &a);
        for (i, row) in prod.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-10, "({i},{j})={v}");
            }
        }
    }

    #[test]
    fn block_tridiag_residual_is_small() {
        let n = 8;
        let mk = |d: f64, o: f64| -> Block5 {
            let mut b = [[o * 0.1; 5]; 5];
            for (i, row) in b.iter_mut().enumerate() {
                row[i] = d;
            }
            b
        };
        let lower: Vec<Block5> =
            (0..n).map(|i| if i == 0 { [[0.0; 5]; 5] } else { mk(-1.0, 0.2) }).collect();
        let diag0: Vec<Block5> = (0..n).map(|_| mk(6.0, 0.5)).collect();
        let upper0: Vec<Block5> =
            (0..n).map(|i| if i + 1 == n { [[0.0; 5]; 5] } else { mk(-1.0, -0.3) }).collect();
        let rhs0: Vec<Vec5> = (0..n)
            .map(|i| {
                let mut v = [0.0; 5];
                for (c, x) in v.iter_mut().enumerate() {
                    *x = ((i + c) as f64).cos() + 2.0;
                }
                v
            })
            .collect();
        let mut diag = diag0.clone();
        let mut upper = upper0.clone();
        let mut x = rhs0.clone();
        block_tridiag_solve(&lower, &mut diag, &mut upper, &mut x);
        // Residual: lower*x[i-1] + diag0*x[i] + upper0*x[i+1] == rhs0.
        for i in 0..n {
            let mut acc = matvec5(&diag0[i], &x[i]);
            if i > 0 {
                let l = matvec5(&lower[i], &x[i - 1]);
                for r in 0..5 {
                    acc[r] += l[r];
                }
            }
            if i + 1 < n {
                let u = matvec5(&upper0[i], &x[i + 1]);
                for r in 0..5 {
                    acc[r] += u[r];
                }
            }
            for r in 0..5 {
                assert!((acc[r] - rhs0[i][r]).abs() < 1e-9, "row {i},{r}");
            }
        }
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let n = 64;
        let mut data: Vec<f64> = (0..2 * n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let orig = data.clone();
        fft_radix2(&mut data, -1.0);
        fft_radix2(&mut data, 1.0);
        for v in data.iter_mut() {
            *v /= n as f64;
        }
        for (a, b) in data.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let n = 16;
        let mut data = vec![0.0; 2 * n];
        data[0] = 1.0; // delta at index 0
        fft_radix2(&mut data, -1.0);
        for k in 0..n {
            assert!((data[2 * k] - 1.0).abs() < 1e-12);
            assert!(data[2 * k + 1].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval_energy_is_preserved() {
        let n = 128;
        let mut data: Vec<f64> = (0..2 * n).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        let time_energy: f64 = data.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum();
        fft_radix2(&mut data, -1.0);
        let freq_energy: f64 =
            data.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }
}

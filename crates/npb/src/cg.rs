//! CG — conjugate gradient with an irregular sparse matrix.
//!
//! Each command queue owns an independent CG instance (constant work per
//! queue, one of Table II's two scaling regimes): a random symmetric
//! diagonally dominant matrix in CSR form built with the NPB `randdp`
//! generator (the spirit of NPB's `makea`), solved by outer iterations of
//! `inner_steps` CG steps each.
//!
//! All reduction scalars (ρ, p·q, new ρ) live in a small device buffer, so
//! an entire outer iteration is a single kernel epoch with no host
//! round-trips — the task-parallel structure the paper's scheduler feeds on.
//! Table II options: `SCHED_EXPLICIT_REGION` around the first (warmup)
//! outer iteration.

use crate::class::Class;
use crate::randdp::RanDp;
use crate::suite::{make_queues, region_start, region_stop, QueuePlan};
use clrt::error::ClResult;
use clrt::{ArgValue, Buffer, Kernel, KernelBody, KernelCtx, NdRange};
use hwsim::{KernelCostSpec, KernelTraits};
use multicl::{MulticlContext, SchedQueue};
use std::sync::Arc;

const LOCAL: u64 = 64;
/// Off-diagonal entries added per row (before symmetrization).
const ROW_NNZ: usize = 4;
/// CG steps per outer iteration (NPB uses 25; scaled).
const INNER_STEPS: usize = 8;
/// Outer iterations (NPB uses 15–75; scaled).
const OUTER_ITERS: usize = 10;

/// Matrix dimension per class (scaled from NPB's 1400…1.5M).
pub fn problem_size(class: Class) -> usize {
    match class {
        Class::S => 2048,
        Class::W => 4096,
        Class::A => 8192,
        Class::B => 16384,
        Class::C => 32768,
        Class::D => 65536,
    }
}

/// A CSR sparse matrix.
pub struct Csr {
    /// Row start offsets, `n + 1` entries.
    pub rowptr: Vec<u32>,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
}

/// Build the symmetric, diagonally dominant test matrix
/// `A = shift·I + B + Bᵀ` with `ROW_NNZ` random entries per row of `B`.
pub fn make_matrix(n: usize, seed: u64) -> Csr {
    let mut rng = RanDp::new(seed);
    // Collect symmetric entries in a per-row map.
    let mut rows: Vec<std::collections::BTreeMap<u32, f64>> = vec![Default::default(); n];
    for i in 0..n {
        for _ in 0..ROW_NNZ {
            let j = (rng.next_f64() * n as f64) as usize % n;
            if i == j {
                continue;
            }
            let v = 0.2 * (rng.next_f64() - 0.5);
            *rows[i].entry(j as u32).or_insert(0.0) += v;
            *rows[j].entry(i as u32).or_insert(0.0) += v;
        }
    }
    // Diagonal dominance: diag = shift + sum |off-diag| per row.
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    rowptr.push(0u32);
    for (i, row) in rows.iter().enumerate() {
        let offsum: f64 = row.values().map(|v| v.abs()).sum();
        let mut inserted_diag = false;
        for (&j, &v) in row.iter() {
            if j as usize > i && !inserted_diag {
                cols.push(i as u32);
                vals.push(1.0 + offsum);
                inserted_diag = true;
            }
            cols.push(j);
            vals.push(v);
        }
        if !inserted_diag {
            cols.push(i as u32);
            vals.push(1.0 + offsum);
        }
        rowptr.push(cols.len() as u32);
    }
    Csr { rowptr, cols, vals }
}

/// Serial CSR mat-vec: `y = A·x` (reference and kernel share this).
pub fn csr_matvec(csr: &Csr, x: &[f64], y: &mut [f64]) {
    for (i, yi) in y.iter_mut().enumerate() {
        let (lo, hi) = (csr.rowptr[i] as usize, csr.rowptr[i + 1] as usize);
        let mut acc = 0.0;
        for k in lo..hi {
            acc += csr.vals[k] * x[csr.cols[k] as usize];
        }
        *yi = acc;
    }
}

fn sparse_traits() -> KernelTraits {
    // Gather addressing: poorly coalesced, modest vectorization — the
    // pattern that makes naive GPU SpMV lose to a cached CPU (Fig. 3).
    KernelTraits {
        coalescing: 0.22,
        branch_divergence: 0.15,
        vector_friendliness: 0.3,
        double_precision: true,
    }
}

fn stream_traits() -> KernelTraits {
    KernelTraits {
        coalescing: 0.9,
        branch_divergence: 0.0,
        vector_friendliness: 0.8,
        double_precision: true,
    }
}

/// `cg_init`: x=0, r=b, p=b, scal[0]=b·b.
/// Args: b, x(mut), r(mut), p(mut), scal(mut), n.
struct CgInit;
impl KernelBody for CgInit {
    fn name(&self) -> &str {
        "cg_init"
    }
    fn arity(&self) -> usize {
        6
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 2.0, bytes_per_item: 40.0, traits: stream_traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(5) as usize;
        let b = ctx.slice::<f64>(0);
        let x = ctx.slice_mut::<f64>(1);
        let r = ctx.slice_mut::<f64>(2);
        let p = ctx.slice_mut::<f64>(3);
        let scal = ctx.slice_mut::<f64>(4);
        let mut rho = 0.0;
        for i in 0..n {
            x[i] = 0.0;
            r[i] = b[i];
            p[i] = b[i];
            rho += b[i] * b[i];
        }
        scal[0] = rho;
    }
}

/// `cg_matvec`: q = A·p. Args: rowptr, cols, vals, p, q(mut), n.
struct CgMatvec;
impl KernelBody for CgMatvec {
    fn name(&self) -> &str {
        "cg_matvec"
    }
    fn arity(&self) -> usize {
        6
    }
    fn cost(&self) -> KernelCostSpec {
        // ~2·nnz flops and ~20 bytes per nonzero per row.
        KernelCostSpec {
            flops_per_item: (2 * (2 * ROW_NNZ + 1)) as f64,
            bytes_per_item: (20 * (2 * ROW_NNZ + 1)) as f64,
            traits: sparse_traits(),
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(5) as usize;
        let rowptr = ctx.slice::<u32>(0);
        let cols = ctx.slice::<u32>(1);
        let vals = ctx.slice::<f64>(2);
        let p = ctx.slice::<f64>(3);
        let q = ctx.slice_mut::<f64>(4);
        // Parallelize over row blocks; each row only reads shared data.
        const ROWS_PER_TASK: usize = 1024;
        crate::par::par_chunks_mut(&mut q[..n], ROWS_PER_TASK, |chunk_idx, rows| {
            for (j, qi) in rows.iter_mut().enumerate() {
                let i = chunk_idx * ROWS_PER_TASK + j;
                let (lo, hi) = (rowptr[i] as usize, rowptr[i + 1] as usize);
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += vals[k] * p[cols[k] as usize];
                }
                *qi = acc;
            }
        });
    }
}

/// `cg_dot_pq`: scal[1] = p·q. Args: p, q, scal(mut), n.
struct CgDotPq;
impl KernelBody for CgDotPq {
    fn name(&self) -> &str {
        "cg_dot_pq"
    }
    fn arity(&self) -> usize {
        4
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 2.0, bytes_per_item: 16.0, traits: stream_traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(3) as usize;
        let p = ctx.slice::<f64>(0);
        let q = ctx.slice::<f64>(1);
        let scal = ctx.slice_mut::<f64>(2);
        scal[1] = (0..n).map(|i| p[i] * q[i]).sum();
    }
}

/// `cg_update`: α = scal[0]/scal[1]; x += α p; r -= α q; scal[2] = r·r.
/// Args: p, q, x(mut), r(mut), scal(mut), n.
struct CgUpdate;
impl KernelBody for CgUpdate {
    fn name(&self) -> &str {
        "cg_update"
    }
    fn arity(&self) -> usize {
        6
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 6.0, bytes_per_item: 48.0, traits: stream_traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(5) as usize;
        let p = ctx.slice::<f64>(0);
        let q = ctx.slice::<f64>(1);
        let x = ctx.slice_mut::<f64>(2);
        let r = ctx.slice_mut::<f64>(3);
        let scal = ctx.slice_mut::<f64>(4);
        let alpha = scal[0] / scal[1];
        let mut rho_new = 0.0;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
            rho_new += r[i] * r[i];
        }
        scal[2] = rho_new;
    }
}

/// `cg_update_p`: β = scal[2]/scal[0]; p = r + β p; scal[0] = scal[2].
/// Args: r, p(mut), scal(mut), n.
struct CgUpdateP;
impl KernelBody for CgUpdateP {
    fn name(&self) -> &str {
        "cg_update_p"
    }
    fn arity(&self) -> usize {
        4
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 2.0, bytes_per_item: 24.0, traits: stream_traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(3) as usize;
        let r = ctx.slice::<f64>(0);
        let p = ctx.slice_mut::<f64>(1);
        let scal = ctx.slice_mut::<f64>(2);
        let beta = scal[2] / scal[0];
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        scal[0] = scal[2];
    }
}

struct CgSlice {
    csr: Csr,
    b: Vec<f64>,
    k_init: Kernel,
    k_matvec: Kernel,
    k_dot: Kernel,
    k_update: Kernel,
    k_update_p: Kernel,
    x: Buffer,
    n: usize,
}

/// The CG application: N independent queues, OUTER_ITERS epochs.
pub struct CgApp {
    queues: Vec<SchedQueue>,
    slices: Vec<CgSlice>,
}

impl CgApp {
    /// Build CG for `class` over `nqueues` queues under `plan`.
    pub fn new(
        ctx: &MulticlContext,
        class: Class,
        nqueues: usize,
        plan: &QueuePlan,
    ) -> ClResult<CgApp> {
        let meta = crate::suite::info("CG").expect("CG in suite");
        let queues = make_queues(ctx, plan, nqueues, meta.flags)?;
        let program = ctx.create_program(vec![
            Arc::new(CgInit) as Arc<dyn KernelBody>,
            Arc::new(CgMatvec),
            Arc::new(CgDotPq),
            Arc::new(CgUpdate),
            Arc::new(CgUpdateP),
        ])?;
        let n = problem_size(class);
        let mut slices = Vec::with_capacity(nqueues);
        for (qi, q) in queues.iter().enumerate() {
            let csr = make_matrix(n, 271_828_183 + 2 * qi as u64);
            let mut rng = RanDp::new(314_159_261 + 2 * qi as u64);
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();

            let buf_rowptr = ctx.create_buffer_of::<u32>(csr.rowptr.len())?;
            let buf_cols = ctx.create_buffer_of::<u32>(csr.cols.len())?;
            let buf_vals = ctx.create_buffer_of::<f64>(csr.vals.len())?;
            let buf_b = ctx.create_buffer_of::<f64>(n)?;
            let x = ctx.create_buffer_of::<f64>(n)?;
            let r = ctx.create_buffer_of::<f64>(n)?;
            let p = ctx.create_buffer_of::<f64>(n)?;
            let qv = ctx.create_buffer_of::<f64>(n)?;
            let scal = ctx.create_buffer_of::<f64>(4)?;
            q.enqueue_write(&buf_rowptr, &csr.rowptr)?;
            q.enqueue_write(&buf_cols, &csr.cols)?;
            q.enqueue_write(&buf_vals, &csr.vals)?;
            q.enqueue_write(&buf_b, &b)?;

            let k_init = program.create_kernel("cg_init")?;
            k_init.set_arg(0, ArgValue::Buffer(buf_b.clone()))?;
            k_init.set_arg(1, ArgValue::BufferMut(x.clone()))?;
            k_init.set_arg(2, ArgValue::BufferMut(r.clone()))?;
            k_init.set_arg(3, ArgValue::BufferMut(p.clone()))?;
            k_init.set_arg(4, ArgValue::BufferMut(scal.clone()))?;
            k_init.set_arg(5, ArgValue::U64(n as u64))?;

            let k_matvec = program.create_kernel("cg_matvec")?;
            k_matvec.set_arg(0, ArgValue::Buffer(buf_rowptr.clone()))?;
            k_matvec.set_arg(1, ArgValue::Buffer(buf_cols.clone()))?;
            k_matvec.set_arg(2, ArgValue::Buffer(buf_vals.clone()))?;
            k_matvec.set_arg(3, ArgValue::Buffer(p.clone()))?;
            k_matvec.set_arg(4, ArgValue::BufferMut(qv.clone()))?;
            k_matvec.set_arg(5, ArgValue::U64(n as u64))?;

            let k_dot = program.create_kernel("cg_dot_pq")?;
            k_dot.set_arg(0, ArgValue::Buffer(p.clone()))?;
            k_dot.set_arg(1, ArgValue::Buffer(qv.clone()))?;
            k_dot.set_arg(2, ArgValue::BufferMut(scal.clone()))?;
            k_dot.set_arg(3, ArgValue::U64(n as u64))?;

            let k_update = program.create_kernel("cg_update")?;
            k_update.set_arg(0, ArgValue::Buffer(p.clone()))?;
            k_update.set_arg(1, ArgValue::Buffer(qv.clone()))?;
            k_update.set_arg(2, ArgValue::BufferMut(x.clone()))?;
            k_update.set_arg(3, ArgValue::BufferMut(r.clone()))?;
            k_update.set_arg(4, ArgValue::BufferMut(scal.clone()))?;
            k_update.set_arg(5, ArgValue::U64(n as u64))?;

            let k_update_p = program.create_kernel("cg_update_p")?;
            k_update_p.set_arg(0, ArgValue::Buffer(r.clone()))?;
            k_update_p.set_arg(1, ArgValue::BufferMut(p.clone()))?;
            k_update_p.set_arg(2, ArgValue::BufferMut(scal.clone()))?;
            k_update_p.set_arg(3, ArgValue::U64(n as u64))?;

            slices.push(CgSlice { csr, b, k_init, k_matvec, k_dot, k_update, k_update_p, x, n });
        }
        Ok(CgApp { queues, slices })
    }

    fn enqueue_outer_iteration(&self, qi: usize) -> ClResult<()> {
        let s = &self.slices[qi];
        let q = &self.queues[qi];
        let nd = NdRange::d1(s.n as u64, LOCAL);
        q.enqueue_ndrange(&s.k_init, nd)?;
        for _ in 0..INNER_STEPS {
            q.enqueue_ndrange(&s.k_matvec, nd)?;
            q.enqueue_ndrange(&s.k_dot, nd)?;
            q.enqueue_ndrange(&s.k_update, nd)?;
            q.enqueue_ndrange(&s.k_update_p, nd)?;
        }
        Ok(())
    }

    /// Run `OUTER_ITERS` outer iterations; the first is the warmup iteration
    /// wrapped in the explicit scheduling region (Table II).
    pub fn run(&mut self) -> ClResult<()> {
        region_start(&self.queues);
        for qi in 0..self.queues.len() {
            self.enqueue_outer_iteration(qi)?;
        }
        for q in &self.queues {
            q.finish();
        }
        region_stop(&self.queues);
        for _ in 1..OUTER_ITERS {
            for qi in 0..self.queues.len() {
                self.enqueue_outer_iteration(qi)?;
            }
            for q in &self.queues {
                q.finish();
            }
        }
        Ok(())
    }

    /// Verify: the CG result must satisfy `‖b − A·x‖ ≤ tol·‖b‖` per queue.
    pub fn verify(&self) -> bool {
        for s in &self.slices {
            let x = s.x.host_snapshot::<f64>();
            if x.iter().any(|v| !v.is_finite()) {
                return false;
            }
            let mut ax = vec![0.0; s.n];
            csr_matvec(&s.csr, &x, &mut ax);
            let rnorm: f64 =
                s.b.iter().zip(&ax).map(|(b, a)| (b - a) * (b - a)).sum::<f64>().sqrt();
            let bnorm: f64 = s.b.iter().map(|b| b * b).sum::<f64>().sqrt();
            if rnorm > 1e-6 * bnorm {
                return false;
            }
        }
        true
    }

    /// Consume the app, returning its queues.
    pub fn into_queues(self) -> Vec<SchedQueue> {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::Platform;
    use multicl::{ContextSchedPolicy, MulticlContext, ProfileCache, SchedOptions};

    fn ctx(tag: &str) -> (Platform, MulticlContext) {
        let platform = Platform::paper_node();
        let dir = std::env::temp_dir().join(format!("npb-cg-test-{tag}-{}", std::process::id()));
        let options =
            SchedOptions { profile_cache: ProfileCache::at(dir), ..SchedOptions::default() };
        let c =
            MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options).unwrap();
        (platform, c)
    }

    #[test]
    fn matrix_is_symmetric_and_diagonally_dominant() {
        let n = 128;
        let csr = make_matrix(n, 7);
        // Dense reconstruction for the check.
        let mut dense = vec![vec![0.0f64; n]; n];
        for (i, row) in dense.iter_mut().enumerate() {
            for k in csr.rowptr[i] as usize..csr.rowptr[i + 1] as usize {
                row[csr.cols[k] as usize] = csr.vals[k];
            }
        }
        for (i, row) in dense.iter().enumerate() {
            let offsum: f64 = (0..n).filter(|&j| j != i).map(|j| row[j].abs()).sum();
            assert!(row[i] > offsum, "row {i} not dominant");
            for (j, v) in row.iter().enumerate() {
                assert!((v - dense[j][i]).abs() < 1e-12, "asymmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn cg_converges_under_auto_scheduling() {
        let (_p, c) = ctx("auto");
        let mut app = CgApp::new(&c, Class::S, 2, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
    }

    #[test]
    fn cg_result_is_identical_on_cpu_and_gpu() {
        // Scheduling must never change numerics: run manually on CPU and on
        // a GPU and compare solutions bitwise.
        let (p, c) = ctx("bitwise");
        let cpu = p.node().cpu().unwrap();
        let gpu = p.node().gpus()[0];
        let mut a = CgApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![cpu])).unwrap();
        a.run().unwrap();
        let xa = a.slices[0].x.host_snapshot::<f64>();
        let mut b = CgApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![gpu])).unwrap();
        b.run().unwrap();
        let xb = b.slices[0].x.host_snapshot::<f64>();
        assert_eq!(xa, xb);
    }

    #[test]
    fn cg_prefers_cpu_under_autofit() {
        let (p, c) = ctx("prefers-cpu");
        let mut app = CgApp::new(&c, Class::A, 2, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
        let cpu = p.node().cpu().unwrap();
        // The sparse-matvec-dominated epochs should favour the CPU for at
        // least one queue (Fig. 3/5: CG runs better on the CPU).
        let devices: Vec<_> = app.into_queues().iter().map(|q| q.device()).collect();
        assert!(devices.contains(&cpu), "CG queues all on GPUs: {devices:?}");
    }
}

//! SP — scalar pentadiagonal ADI solver.
//!
//! Same ADI skeleton as BT (rhs → x-sweep → y-sweep → z-sweep → add), but
//! the implicit systems factor into five independent *scalar* pentadiagonal
//! solves per line (NPB's "scalar penta-diagonal" formulation), using
//! [`crate::math::penta_solve`]. Coefficients are state-dependent and
//! diagonally dominant.
//!
//! Table II: queue counts must be square (1, 4, …); options:
//! `SCHED_EXPLICIT_REGION` around the warmup timestep.

use crate::class::Class;
use crate::math::penta_solve;
use crate::suite::{make_queues, region_start, region_stop, QueuePlan};
use clrt::error::ClResult;
use clrt::{ArgValue, Buffer, Kernel, KernelBody, KernelCtx, NdRange};
use hwsim::{KernelCostSpec, KernelTraits};
use multicl::{MulticlContext, SchedQueue};
use std::sync::Arc;

/// Timesteps (NPB: 100–400; scaled).
const NITER: usize = 30;
const THETA: f64 = 0.2;
const PHI: f64 = 0.04;
const DT: f64 = 0.05;

/// Grid edge length per class (scaled from NPB's 12…162).
pub fn grid_size(class: Class) -> usize {
    match class {
        Class::S => 8,
        Class::W => 12,
        Class::A => 16,
        Class::B => 20,
        Class::C => 24,
        Class::D => 28,
    }
}

#[inline]
fn cell(i: usize, j: usize, k: usize, nx: usize, ny: usize) -> usize {
    ((k * ny + j) * nx + i) * 5
}

/// Solve the pentadiagonal systems along `axis` for every line and every
/// component, transforming `rhs` in place. Shared by kernel and reference.
pub fn sweep_axis(u: &[f64], rhs: &mut [f64], dims: (usize, usize, usize), axis: usize) {
    let (nx, ny, nz) = dims;
    let len = [nx, ny, nz][axis];
    if len < 3 {
        return; // pentadiagonal solve needs at least 3 points
    }
    let (da, db) = match axis {
        0 => (ny, nz),
        1 => (nx, nz),
        _ => (nx, ny),
    };
    let index = |a: usize, b: usize, t: usize| -> usize {
        match axis {
            0 => cell(t, a, b, nx, ny),
            1 => cell(a, t, b, nx, ny),
            _ => cell(a, b, t, nx, ny),
        }
    };
    type LineSolution = ((usize, usize), Vec<[f64; 5]>);
    let lines: Vec<(usize, usize)> = (0..db).flat_map(|b| (0..da).map(move |a| (a, b))).collect();
    let solutions: Vec<LineSolution> = crate::par::par_map(&lines, |&(a, b)| {
        let mut out: Vec<[f64; 5]> = vec![[0.0; 5]; len];
        // Five independent scalar solves per line.
        for comp in 0..5 {
            let mut e = vec![0.0f64; len];
            let mut lo = vec![0.0f64; len];
            let mut di = vec![0.0f64; len];
            let mut up = vec![0.0f64; len];
            let mut f = vec![0.0f64; len];
            let mut d = vec![0.0f64; len];
            for t in 0..len {
                let c = index(a, b, t);
                let s = u[c + comp];
                let bend = 1.0 + 0.02 * s / (1.0 + s.abs());
                di[t] = 1.0 + 2.0 * THETA + 2.0 * PHI;
                if t >= 1 {
                    lo[t] = -THETA * bend;
                }
                if t >= 2 {
                    e[t] = PHI * bend;
                }
                if t + 1 < len {
                    up[t] = -THETA * bend;
                }
                if t + 2 < len {
                    f[t] = PHI * bend;
                }
                d[t] = rhs[c + comp];
            }
            penta_solve(&mut e, &mut lo, &mut di, &mut up, &mut f, &mut d);
            for t in 0..len {
                out[t][comp] = d[t];
            }
        }
        ((a, b), out)
    });
    for ((a, b), line) in solutions {
        for (t, v) in line.iter().enumerate() {
            let c = index(a, b, t);
            rhs[c..c + 5].copy_from_slice(v);
        }
    }
}

/// RHS: same dissipative face-neighbor Laplacian as BT's reference.
pub fn compute_rhs_host(u: &[f64], rhs: &mut [f64], dims: (usize, usize, usize)) {
    let (nx, ny, nz) = dims;
    let clamp = |v: i64, n: usize| -> usize { v.clamp(0, n as i64 - 1) as usize };
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let c = cell(i, j, k, nx, ny);
                for comp in 0..5 {
                    let mut acc = -6.0 * u[c + comp];
                    for (di, dj, dk) in [
                        (-1i64, 0i64, 0i64),
                        (1, 0, 0),
                        (0, -1, 0),
                        (0, 1, 0),
                        (0, 0, -1),
                        (0, 0, 1),
                    ] {
                        let nb = cell(
                            clamp(i as i64 + di, nx),
                            clamp(j as i64 + dj, ny),
                            clamp(k as i64 + dk, nz),
                            nx,
                            ny,
                        );
                        acc += u[nb + comp];
                    }
                    rhs[c + comp] = DT * acc;
                }
            }
        }
    }
}

fn solve_traits(coalescing: f64) -> KernelTraits {
    KernelTraits {
        coalescing,
        branch_divergence: 0.18,
        vector_friendliness: 0.25,
        double_precision: true,
    }
}

/// `sp_compute_rhs`. Args: u, rhs(mut), nx, ny, nz.
struct SpRhs;
impl KernelBody for SpRhs {
    fn name(&self) -> &str {
        "sp_compute_rhs"
    }
    fn arity(&self) -> usize {
        5
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 5.0 * 8.0,
            bytes_per_item: 5.0 * 64.0,
            traits: KernelTraits {
                coalescing: 0.4,
                branch_divergence: 0.12,
                vector_friendliness: 0.5,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let dims = (ctx.u64(2) as usize, ctx.u64(3) as usize, ctx.u64(4) as usize);
        let u = ctx.slice::<f64>(0);
        let rhs = ctx.slice_mut::<f64>(1);
        compute_rhs_host(u, rhs, dims);
    }
}

/// Sweep kernels, one per axis. One work-item solves one grid line, so the
/// per-item cost scales with the line length (baked in at creation).
/// Args: u, rhs(mut), nx, ny, nz.
struct SpSolve {
    axis: usize,
    name: &'static str,
    coalescing: f64,
    /// Cells per line along `axis` for this problem instance.
    line_len: usize,
}
impl KernelBody for SpSolve {
    fn name(&self) -> &str {
        self.name
    }
    fn arity(&self) -> usize {
        5
    }
    fn cost(&self) -> KernelCostSpec {
        // Five scalar pentadiagonal solves per cell: ~90 flops, ~240 bytes;
        // one item covers `line_len` cells.
        KernelCostSpec {
            flops_per_item: 90.0 * self.line_len as f64,
            bytes_per_item: 240.0 * self.line_len as f64,
            traits: solve_traits(self.coalescing),
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let dims = (ctx.u64(2) as usize, ctx.u64(3) as usize, ctx.u64(4) as usize);
        let u = ctx.slice::<f64>(0);
        let rhs = ctx.slice_mut::<f64>(1);
        sweep_axis(u, rhs, dims, self.axis);
    }
}

/// `sp_add`: u += rhs. Args: rhs, u(mut), n_values.
struct SpAdd;
impl KernelBody for SpAdd {
    fn name(&self) -> &str {
        "sp_add"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: 1.0,
            bytes_per_item: 24.0,
            traits: KernelTraits {
                coalescing: 0.9,
                branch_divergence: 0.0,
                vector_friendliness: 0.85,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let n = ctx.u64(2) as usize;
        let rhs = ctx.slice::<f64>(0);
        let u = ctx.slice_mut::<f64>(1);
        for i in 0..n {
            u[i] += rhs[i];
        }
    }
}

struct SpSlice {
    u: Buffer,
    /// Correction buffer (kept alive; referenced by the kernel args).
    _rhs: Buffer,
    dims: (usize, usize, usize),
    seed: usize,
    k_rhs: Kernel,
    k_solve: [Kernel; 3],
    k_add: Kernel,
}

/// The SP application.
pub struct SpApp {
    queues: Vec<SchedQueue>,
    slices: Vec<SpSlice>,
}

impl SpApp {
    /// Build SP for `class` over `nqueues` (square) queues under `plan`.
    pub fn new(
        ctx: &MulticlContext,
        class: Class,
        nqueues: usize,
        plan: &QueuePlan,
    ) -> ClResult<SpApp> {
        let meta = crate::suite::info("SP").expect("SP in suite");
        let queues = make_queues(ctx, plan, nqueues, meta.flags)?;
        let n = grid_size(class);
        let tiles = (nqueues as f64).sqrt().round() as usize;
        let (tx, ty) = ((n / tiles).max(3), (n / tiles).max(3));
        let dims = (tx, ty, n);
        let program = ctx.create_program(vec![
            Arc::new(SpRhs) as Arc<dyn KernelBody>,
            Arc::new(SpSolve { axis: 0, name: "sp_x_solve", coalescing: 0.15, line_len: tx }),
            Arc::new(SpSolve { axis: 1, name: "sp_y_solve", coalescing: 0.22, line_len: ty }),
            Arc::new(SpSolve { axis: 2, name: "sp_z_solve", coalescing: 0.28, line_len: n }),
            Arc::new(SpAdd),
        ])?;
        let cells = tx * ty * n;
        let mut slices = Vec::with_capacity(nqueues);
        for (qi, q) in queues.iter().enumerate() {
            let u0 = Self::initial_state(dims, qi);
            let u = ctx.create_buffer_of::<f64>(cells * 5)?;
            let rhs = ctx.create_buffer_of::<f64>(cells * 5)?;
            q.enqueue_write(&u, &u0)?;

            let k_rhs = program.create_kernel("sp_compute_rhs")?;
            let k_solve = [
                program.create_kernel("sp_x_solve")?,
                program.create_kernel("sp_y_solve")?,
                program.create_kernel("sp_z_solve")?,
            ];
            let k_add = program.create_kernel("sp_add")?;
            for k in std::iter::once(&k_rhs).chain(k_solve.iter()) {
                k.set_arg(0, ArgValue::Buffer(u.clone()))?;
                k.set_arg(1, ArgValue::BufferMut(rhs.clone()))?;
                k.set_arg(2, ArgValue::U64(tx as u64))?;
                k.set_arg(3, ArgValue::U64(ty as u64))?;
                k.set_arg(4, ArgValue::U64(n as u64))?;
            }
            k_add.set_arg(0, ArgValue::Buffer(rhs.clone()))?;
            k_add.set_arg(1, ArgValue::BufferMut(u.clone()))?;
            k_add.set_arg(2, ArgValue::U64((cells * 5) as u64))?;
            slices.push(SpSlice { u, _rhs: rhs, dims, seed: qi, k_rhs, k_solve, k_add });
        }
        Ok(SpApp { queues, slices })
    }

    fn initial_state(dims: (usize, usize, usize), seed: usize) -> Vec<f64> {
        let (nx, ny, nz) = dims;
        let mut u0 = vec![0.0f64; nx * ny * nz * 5];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = cell(i, j, k, nx, ny);
                    for comp in 0..5 {
                        u0[c + comp] =
                            1.0 + 0.1 * ((3 * i + j + 2 * k + comp + seed) as f64 * 0.53).cos();
                    }
                }
            }
        }
        u0
    }

    fn enqueue_step(&self, qi: usize) -> ClResult<()> {
        let s = &self.slices[qi];
        let q = &self.queues[qi];
        let (nx, ny, nz) = s.dims;
        let cells = (nx * ny * nz) as u64;
        q.enqueue_ndrange(&s.k_rhs, NdRange::d1(cells, 64))?;
        // One work-item per line orthogonal to each sweep axis.
        let lines = [ny * nz, nx * nz, nx * ny];
        for (k, &nlines) in s.k_solve.iter().zip(&lines) {
            q.enqueue_ndrange(k, NdRange::d1(nlines as u64, 32))?;
        }
        q.enqueue_ndrange(&s.k_add, NdRange::d1(cells * 5, 64))?;
        Ok(())
    }

    /// Run `NITER` ADI timesteps; the first is the warmup region.
    pub fn run(&mut self) -> ClResult<()> {
        region_start(&self.queues);
        for qi in 0..self.queues.len() {
            self.enqueue_step(qi)?;
        }
        for q in &self.queues {
            q.finish();
        }
        region_stop(&self.queues);
        for _ in 1..NITER {
            for qi in 0..self.queues.len() {
                self.enqueue_step(qi)?;
            }
            for q in &self.queues {
                q.finish();
            }
        }
        Ok(())
    }

    /// Verify: finite, bounded, and equal to the serial reference.
    pub fn verify(&self) -> bool {
        for (qi, s) in self.slices.iter().enumerate() {
            let u = s.u.host_snapshot::<f64>();
            if u.iter().any(|v| !v.is_finite()) {
                return false;
            }
            let reference = self.reference_state(qi);
            let maxerr = u.iter().zip(&reference).fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
            if maxerr > 1e-12 {
                return false;
            }
        }
        true
    }

    /// Serial recomputation of queue `qi`'s final state.
    pub fn reference_state(&self, qi: usize) -> Vec<f64> {
        let s = &self.slices[qi];
        let mut u = Self::initial_state(s.dims, s.seed);
        let mut rhs = vec![0.0f64; u.len()];
        for _ in 0..NITER {
            compute_rhs_host(&u, &mut rhs, s.dims);
            for axis in 0..3 {
                sweep_axis(&u, &mut rhs, s.dims, axis);
            }
            for (uv, rv) in u.iter_mut().zip(&rhs) {
                *uv += rv;
            }
        }
        u
    }

    /// Final state of queue `qi`.
    pub fn state(&self, qi: usize) -> Vec<f64> {
        self.slices[qi].u.host_snapshot::<f64>()
    }

    /// Consume the app, returning its queues.
    pub fn into_queues(self) -> Vec<SchedQueue> {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::Platform;
    use multicl::{ContextSchedPolicy, MulticlContext, ProfileCache, SchedOptions};

    fn ctx(tag: &str) -> (Platform, MulticlContext) {
        let platform = Platform::paper_node();
        let dir = std::env::temp_dir().join(format!("npb-sp-test-{tag}-{}", std::process::id()));
        let options =
            SchedOptions { profile_cache: ProfileCache::at(dir), ..SchedOptions::default() };
        let c =
            MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options).unwrap();
        (platform, c)
    }

    #[test]
    fn sp_runs_and_verifies_under_auto_scheduling() {
        let (_p, c) = ctx("auto");
        let mut app = SpApp::new(&c, Class::S, 4, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
    }

    #[test]
    fn sp_result_is_device_independent() {
        let (p, c) = ctx("device-indep");
        let cpu = p.node().cpu().unwrap();
        let gpu = p.node().gpus()[1];
        let mut a = SpApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![cpu])).unwrap();
        a.run().unwrap();
        let mut b = SpApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![gpu])).unwrap();
        b.run().unwrap();
        assert_eq!(a.state(0), b.state(0));
    }

    #[test]
    fn sp_sweep_is_a_contraction() {
        let dims = (6, 6, 6);
        let cells = 6 * 6 * 6;
        let u = vec![1.0; cells * 5];
        let mut rhs: Vec<f64> = (0..cells * 5).map(|i| ((i as f64) * 0.23).cos()).collect();
        let before: f64 = rhs.iter().map(|v| v * v).sum();
        sweep_axis(&u, &mut rhs, dims, 1);
        let after: f64 = rhs.iter().map(|v| v * v).sum();
        assert!(after < before);
    }

    #[test]
    fn sp_prefers_cpu_under_autofit() {
        let (p, c) = ctx("prefers-cpu");
        let mut app = SpApp::new(&c, Class::A, 1, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
        assert_eq!(app.queues[0].device(), p.node().cpu().unwrap());
    }
}

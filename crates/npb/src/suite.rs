//! Table II metadata and the uniform benchmark runner used by the figure
//! harness.

use crate::class::Class;
use crate::{bt, cg, ep, ft, mg, sp};
use clrt::error::{ClError, ClResult};
use clrt::Platform;
use hwsim::{DeviceId, SimDuration};
use multicl::{
    ContextSchedPolicy, MulticlContext, QueueSchedFlags, SchedOptions, SchedQueue, SchedStats,
};

/// How a benchmark's command queues are created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueuePlan {
    /// Automatic scheduling with the benchmark's Table II options.
    Auto,
    /// Automatic scheduling with caller-supplied flags (ablations).
    AutoWith(QueueSchedFlags),
    /// Manual `SCHED_OFF` queues statically bound to the given devices
    /// (cycled if fewer devices than queues) — the Figure 4 baselines.
    Manual(Vec<DeviceId>),
}

/// Queue-count restrictions from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRule {
    /// Square numbers (BT, SP): 1, 4, 9, …
    Square,
    /// Powers of two (CG, FT, MG): 1, 2, 4, …
    PowerOfTwo,
    /// Any count (EP).
    Any,
}

impl QueueRule {
    /// True if `n` queues are allowed under this rule.
    pub fn allows(self, n: usize) -> bool {
        if n == 0 {
            return false;
        }
        match self {
            QueueRule::Square => {
                let r = (n as f64).sqrt().round() as usize;
                r * r == n
            }
            QueueRule::PowerOfTwo => n.is_power_of_two(),
            QueueRule::Any => true,
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct BenchmarkInfo {
    /// Benchmark name ("BT", …).
    pub name: &'static str,
    /// Classes the benchmark supports.
    pub classes: &'static [Class],
    /// Queue-count restriction.
    pub queue_rule: QueueRule,
    /// Example valid queue counts, as printed in Table II.
    pub queue_examples: &'static [usize],
    /// The scheduler options chosen in the paper (Table II).
    pub scheduler_options: &'static [&'static str],
    /// The queue flags implementing those options.
    pub flags: QueueSchedFlags,
    /// Whether the code also calls `clSetKernelWorkGroupInfo`.
    pub uses_work_group_info: bool,
}

const REGION: QueueSchedFlags = QueueSchedFlags::SCHED_EXPLICIT_REGION;

/// The six SNU-NPB-MD rows of Table II.
pub fn suite() -> Vec<BenchmarkInfo> {
    use Class::*;
    let dyn_region = QueueSchedFlags::SCHED_AUTO_DYNAMIC | REGION;
    vec![
        BenchmarkInfo {
            name: "BT",
            classes: &[S, W, A, B],
            queue_rule: QueueRule::Square,
            queue_examples: &[1, 4],
            scheduler_options: &["SCHED_EXPLICIT_REGION", "clSetKernelWorkGroupInfo"],
            flags: dyn_region,
            uses_work_group_info: true,
        },
        BenchmarkInfo {
            name: "CG",
            classes: &[S, W, A, B, C],
            queue_rule: QueueRule::PowerOfTwo,
            queue_examples: &[1, 2, 4],
            scheduler_options: &["SCHED_EXPLICIT_REGION"],
            flags: dyn_region,
            uses_work_group_info: false,
        },
        BenchmarkInfo {
            name: "EP",
            classes: &[S, W, A, B, C, D],
            queue_rule: QueueRule::Any,
            queue_examples: &[1, 2, 4],
            scheduler_options: &["SCHED_KERNEL_EPOCH", "SCHED_COMPUTE_BOUND", "SCHED_SPLITTABLE"],
            flags: QueueSchedFlags::SCHED_AUTO_DYNAMIC
                .bitor(QueueSchedFlags::SCHED_KERNEL_EPOCH)
                .bitor(QueueSchedFlags::SCHED_COMPUTE_BOUND)
                .bitor(QueueSchedFlags::SCHED_SPLITTABLE),
            uses_work_group_info: false,
        },
        BenchmarkInfo {
            name: "FT",
            classes: &[S, W, A],
            queue_rule: QueueRule::PowerOfTwo,
            queue_examples: &[1, 2, 4],
            scheduler_options: &["SCHED_EXPLICIT_REGION", "clSetKernelWorkGroupInfo"],
            flags: dyn_region,
            uses_work_group_info: true,
        },
        BenchmarkInfo {
            name: "MG",
            classes: &[S, W, A, B],
            queue_rule: QueueRule::PowerOfTwo,
            queue_examples: &[1, 2, 4],
            scheduler_options: &["SCHED_EXPLICIT_REGION", "SCHED_SPLITTABLE"],
            flags: dyn_region.bitor(QueueSchedFlags::SCHED_SPLITTABLE),
            uses_work_group_info: false,
        },
        BenchmarkInfo {
            name: "SP",
            classes: &[S, W, A, B, C],
            queue_rule: QueueRule::Square,
            queue_examples: &[1, 4],
            scheduler_options: &["SCHED_EXPLICIT_REGION"],
            flags: dyn_region,
            uses_work_group_info: false,
        },
    ]
}

// `QueueSchedFlags` has a const-incompatible BitOr; a tiny helper keeps the
// table above readable.
trait BitOrExt {
    fn bitor(self, other: QueueSchedFlags) -> QueueSchedFlags;
}
impl BitOrExt for QueueSchedFlags {
    fn bitor(self, other: QueueSchedFlags) -> QueueSchedFlags {
        self | other
    }
}

/// Look up a suite row by name (case-insensitive).
pub fn info(name: &str) -> Option<BenchmarkInfo> {
    suite().into_iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Create the command queues for a benchmark according to `plan`.
pub(crate) fn make_queues(
    ctx: &MulticlContext,
    plan: &QueuePlan,
    n: usize,
    auto_flags: QueueSchedFlags,
) -> ClResult<Vec<SchedQueue>> {
    match plan {
        QueuePlan::Auto => (0..n).map(|_| ctx.create_queue(auto_flags)).collect(),
        QueuePlan::AutoWith(flags) => (0..n).map(|_| ctx.create_queue(*flags)).collect(),
        QueuePlan::Manual(devs) => {
            if devs.is_empty() {
                return Err(ClError::InvalidValue("manual plan needs ≥1 device".into()));
            }
            (0..n).map(|i| ctx.create_queue_on(devs[i % devs.len()])).collect()
        }
    }
}

/// Open an explicit scheduling region on every auto queue that has the
/// `SCHED_EXPLICIT_REGION` flag (no-op for others). Benchmarks call this
/// around their warmup iteration.
pub(crate) fn region_start(queues: &[SchedQueue]) {
    for q in queues {
        if q.flags().contains(QueueSchedFlags::SCHED_EXPLICIT_REGION) {
            let _ = q.set_sched_property(true);
        }
    }
}

/// Close the explicit scheduling region (see [`region_start`]).
pub(crate) fn region_stop(queues: &[SchedQueue]) {
    for q in queues {
        if q.flags().contains(QueueSchedFlags::SCHED_EXPLICIT_REGION) {
            let _ = q.set_sched_property(false);
        }
    }
}

/// Result of one benchmark run on the virtual node.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark label, e.g. `"EP.D"`.
    pub label: String,
    /// Virtual time from run start to all-queues-drained.
    pub time: SimDuration,
    /// Whether the benchmark's verification passed.
    pub verified: bool,
    /// Device each queue ended on.
    pub final_devices: Vec<DeviceId>,
    /// Scheduler counters for the run.
    pub stats: SchedStats,
}

/// Run one benchmark end to end on a fresh context over `platform`.
///
/// This is the figure harness entry point: it builds the app (per `name`),
/// runs it under `plan`, verifies, and reports the virtual makespan. The
/// caller supplies the platform so it can snapshot traces afterwards.
pub fn run_benchmark(
    platform: &Platform,
    policy: ContextSchedPolicy,
    options: SchedOptions,
    name: &str,
    class: Class,
    queues: usize,
    plan: &QueuePlan,
) -> ClResult<RunResult> {
    let meta =
        info(name).ok_or_else(|| ClError::InvalidValue(format!("unknown benchmark `{name}`")))?;
    if !meta.queue_rule.allows(queues) {
        return Err(ClError::InvalidValue(format!(
            "{name} does not allow {queues} queues ({:?})",
            meta.queue_rule
        )));
    }
    if !meta.classes.contains(&class) {
        return Err(ClError::InvalidValue(format!("{name} has no class {class}")));
    }
    let ctx = MulticlContext::with_options(platform, policy, options)?;
    // Time only the solve loop (`run`), as NPB does: context creation
    // (device profiling), program build (minikernel transformation), and
    // initial data distribution are one-time setup outside the timed region.
    macro_rules! timed_run {
        ($app_ty:ty) => {{
            let mut app = <$app_ty>::new(&ctx, class, queues, plan)?;
            let start = platform.now();
            app.run()?;
            let time = platform.now() - start;
            (time, app.verify(), app.into_queues())
        }};
    }
    let (time, verified, queues_handles) = match meta.name {
        "BT" => timed_run!(bt::BtApp),
        "CG" => timed_run!(cg::CgApp),
        "EP" => timed_run!(ep::EpApp),
        "FT" => timed_run!(ft::FtApp),
        "MG" => timed_run!(mg::MgApp),
        "SP" => timed_run!(sp::SpApp),
        other => unreachable!("suite() listed unknown benchmark {other}"),
    };
    Ok(RunResult {
        label: format!("{}.{}", meta.name, class),
        time,
        verified,
        final_devices: queues_handles.iter().map(SchedQueue::device).collect(),
        stats: ctx.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_rules_match_table_ii() {
        assert!(QueueRule::Square.allows(1));
        assert!(QueueRule::Square.allows(4));
        assert!(!QueueRule::Square.allows(2));
        assert!(QueueRule::PowerOfTwo.allows(2));
        assert!(!QueueRule::PowerOfTwo.allows(3));
        assert!(QueueRule::Any.allows(3));
        assert!(!QueueRule::Any.allows(0));
    }

    #[test]
    fn suite_has_six_benchmarks_with_paper_options() {
        let s = suite();
        assert_eq!(s.len(), 6);
        let ep = info("ep").unwrap();
        assert!(ep.flags.contains(QueueSchedFlags::SCHED_COMPUTE_BOUND));
        assert!(ep.flags.contains(QueueSchedFlags::SCHED_KERNEL_EPOCH));
        let bt = info("BT").unwrap();
        assert!(bt.uses_work_group_info);
        assert!(bt.flags.contains(QueueSchedFlags::SCHED_EXPLICIT_REGION));
        // Classes per Table II.
        assert_eq!(info("FT").unwrap().classes, &[Class::S, Class::W, Class::A]);
        assert_eq!(info("EP").unwrap().classes.len(), 6);
    }

    #[test]
    fn every_suite_flag_combination_is_valid() {
        for b in suite() {
            assert!(b.flags.validate().is_ok(), "{}", b.name);
            assert!(b.flags.is_auto(), "{}", b.name);
        }
    }

    #[test]
    fn unknown_benchmark_is_rejected() {
        assert!(info("XX").is_none());
    }

    #[test]
    fn table_ii_work_scaling_regimes_hold() {
        // Table II distinguishes two decomposition regimes: EP divides a
        // fixed total among its queues (constant work per application),
        // while CG gives every queue its own full problem (constant work
        // per queue). Verify on a single device, where the regimes show up
        // directly in the serialized run time.
        use multicl::{ContextSchedPolicy, ProfileCache, SchedOptions};
        let options = || SchedOptions {
            profile_cache: ProfileCache::at(
                std::env::temp_dir().join(format!("npb-scaling-test-{}", std::process::id())),
            ),
            ..SchedOptions::default()
        };
        let cpu = hwsim::NodeConfig::paper_node().cpu().unwrap();
        let run = |name: &str, class: Class, queues: usize| -> f64 {
            let platform = clrt::Platform::paper_node();
            let r = run_benchmark(
                &platform,
                ContextSchedPolicy::AutoFit,
                options(),
                name,
                class,
                queues,
                &QueuePlan::Manual(vec![cpu]),
            )
            .unwrap();
            assert!(r.verified);
            r.time.as_secs_f64()
        };
        // EP: total work constant → similar time for 1 vs 4 queues. Class A
        // keeps each quarter-slice wide enough to saturate the device (at
        // class S a slice is 4 workgroups on a 16-core CPU, so utilization
        // — not work — dominates).
        let (ep1, ep4) = (run("EP", Class::A, 1), run("EP", Class::A, 4));
        let ratio = ep4 / ep1;
        assert!((0.6..1.7).contains(&ratio), "EP work should not scale with queues: {ratio:.2}");
        // CG: work per queue constant → ~2× time for 2 vs 1 queues.
        let (cg1, cg2) = (run("CG", Class::S, 1), run("CG", Class::S, 2));
        let ratio = cg2 / cg1;
        assert!((1.6..2.4).contains(&ratio), "CG work should double with queues: {ratio:.2}");
    }

    #[test]
    fn run_benchmark_rejects_invalid_requests() {
        use multicl::{ContextSchedPolicy, ProfileCache, SchedOptions};
        let platform = clrt::Platform::paper_node();
        let options = || SchedOptions {
            profile_cache: ProfileCache::at(
                std::env::temp_dir().join(format!("npb-suite-test-{}", std::process::id())),
            ),
            ..SchedOptions::default()
        };
        // BT requires square queue counts.
        let r = run_benchmark(
            &platform,
            ContextSchedPolicy::AutoFit,
            options(),
            "BT",
            Class::S,
            2,
            &QueuePlan::Auto,
        );
        assert!(r.is_err(), "BT with 2 queues must be rejected");
        // FT has no class D.
        let r = run_benchmark(
            &platform,
            ContextSchedPolicy::AutoFit,
            options(),
            "FT",
            Class::D,
            1,
            &QueuePlan::Auto,
        );
        assert!(r.is_err(), "FT.D is not in Table II");
        // Unknown benchmark name.
        let r = run_benchmark(
            &platform,
            ContextSchedPolicy::AutoFit,
            options(),
            "LU",
            Class::S,
            1,
            &QueuePlan::Auto,
        );
        assert!(r.is_err());
        // Manual plan with no devices.
        let r = run_benchmark(
            &platform,
            ContextSchedPolicy::AutoFit,
            options(),
            "EP",
            Class::S,
            1,
            &QueuePlan::Manual(vec![]),
        );
        assert!(r.is_err());
    }
}

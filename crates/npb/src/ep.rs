//! EP — the NPB "embarrassingly parallel" benchmark.
//!
//! Generates pairs of uniform deviates with the NPB `randdp` generator,
//! converts accepted pairs to Gaussian deviates with the Marsaglia polar
//! method, and tallies them into ten annular bins plus running sums. Each
//! command queue owns a disjoint slice of the global random sequence
//! (skip-ahead), so queues are fully independent — the paper's canonical
//! compute-bound, GPU-friendly, non-iterative workload.
//!
//! Kernels per queue: `embar` (the pair generation/tally, one launch) and
//! `ep_reduce` (partial-result reduction). Table II options:
//! `SCHED_KERNEL_EPOCH` + `SCHED_COMPUTE_BOUND` (minikernel profiling).

use crate::class::Class;
use crate::randdp::{RanDp, SEED};
use crate::suite::{make_queues, QueuePlan};
use clrt::error::ClResult;
use clrt::{ArgValue, Buffer, Kernel, KernelBody, KernelCtx, NdRange};
use hwsim::{KernelCostSpec, KernelTraits};
use multicl::{MulticlContext, SchedQueue};
use std::sync::Arc;

/// Pairs of deviates generated per work-item.
const PAIRS_PER_ITEM: u64 = 32;
/// Work-items per workgroup.
const LOCAL: u64 = 64;
/// Per-*workgroup* partial record: sx, sy, then 10 bin counts (as f64).
/// Reducing within the workgroup (as the OpenCL kernel does in local
/// memory) keeps the records buffer tiny even for class D.
const REC: usize = 12;

/// log2 of the total pair count per class. Scaled from the real NPB
/// (2^24…2^36) so class D runs in seconds; each class is 4× its predecessor,
/// preserving the paper's growth rate.
fn log2_pairs(class: Class) -> u32 {
    match class {
        Class::S => 15,
        Class::W => 17,
        Class::A => 19,
        Class::B => 21,
        Class::C => 23,
        Class::D => 25,
    }
}

/// Total Gaussian-pair budget for a class.
pub fn total_pairs(class: Class) -> u64 {
    1 << log2_pairs(class)
}

/// Serial reference implementation for one contiguous pair range.
/// Returns `(sx, sy, bins[10])`. Used by the kernel body (per item) and by
/// verification (whole range).
pub fn gaussian_tally(seed: u64, first_pair: u64, pairs: u64) -> (f64, f64, [u64; 10]) {
    let mut rng = RanDp::new(seed);
    rng.skip(2 * first_pair);
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    let mut bins = [0u64; 10];
    for _ in 0..pairs {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let (gx, gy) = (x * f, y * f);
            sx += gx;
            sy += gy;
            let l = gx.abs().max(gy.abs()) as usize;
            if l < 10 {
                bins[l] += 1;
            }
        }
    }
    (sx, sy, bins)
}

/// The `embar` kernel: each work-item tallies its own pair chunk into the
/// output record buffer. Args: 0 = out records (mut), 1 = first pair of
/// this queue's slice (u64), 2 = total items (u64).
struct Embar;

impl KernelBody for Embar {
    fn name(&self) -> &str {
        "embar"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        // ~100 flops per pair (two LCG steps, the accept test, ln/sqrt on
        // ~78% of pairs); the per-workgroup record amortizes to ~2 bytes
        // per item. Heavily compute-bound. The SNU-NPB CPU port of this
        // kernel barely vectorizes (transcendentals + data-dependent
        // branch), which is why the paper sees the GPU win by an order of
        // magnitude.
        KernelCostSpec {
            flops_per_item: PAIRS_PER_ITEM as f64 * 100.0,
            bytes_per_item: (REC * 8) as f64 / LOCAL as f64,
            traits: KernelTraits {
                coalescing: 1.0,
                branch_divergence: 0.35,
                vector_friendliness: 0.08,
                double_precision: true,
            },
        }
    }
    fn splittable(&self) -> bool {
        true
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let first_pair = ctx.u64(1);
        let items = ctx.u64(2);
        // Honor sub-range launches: a split chunk owns the workgroups
        // starting at `global_offset[0] / LOCAL` and covers at most its own
        // NDRange extent, clamped to the items that actually remain.
        let item_base = ctx.global_offset()[0];
        let span = ctx.nd().global_items();
        let wg_base = (item_base / LOCAL) as usize;
        let wgs = span.min(items.saturating_sub(item_base)).div_ceil(LOCAL) as usize;
        let out = ctx.slice_mut::<f64>(0);
        // One parallel task per workgroup; each reduces its items locally
        // (mirroring the OpenCL kernel's local-memory reduction).
        let start = (wg_base * REC).min(out.len());
        let covered = (wgs * REC).min(out.len() - start);
        crate::par::par_chunks_mut(&mut out[start..start + covered], REC, |wg, rec| {
            let first_item = (wg_base + wg) as u64 * LOCAL;
            let wg_items = LOCAL.min(items.saturating_sub(first_item));
            let (mut sx, mut sy, mut bins) = (0.0f64, 0.0f64, [0u64; 10]);
            for it in 0..wg_items {
                let (px, py, pb) = gaussian_tally(
                    SEED,
                    first_pair + (first_item + it) * PAIRS_PER_ITEM,
                    PAIRS_PER_ITEM,
                );
                sx += px;
                sy += py;
                for (b, p) in bins.iter_mut().zip(pb) {
                    *b += p;
                }
            }
            rec[0] = sx;
            rec[1] = sy;
            for (b, r) in bins.iter().zip(rec[2..].iter_mut()) {
                *r = *b as f64;
            }
        });
    }
}

/// The `ep_reduce` kernel: sums the per-workgroup records into one record.
/// Args: 0 = records (read), 1 = result (mut, 12 doubles), 2 = items (u64).
struct EpReduce;

impl KernelBody for EpReduce {
    fn name(&self) -> &str {
        "ep_reduce"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec {
            flops_per_item: REC as f64,
            bytes_per_item: (REC * 8) as f64,
            traits: KernelTraits {
                coalescing: 0.9,
                branch_divergence: 0.0,
                vector_friendliness: 0.8,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let wgs = ctx.u64(2).div_ceil(LOCAL) as usize;
        let recs = ctx.slice::<f64>(0);
        let result = ctx.slice_mut::<f64>(1);
        result.fill(0.0);
        for i in 0..wgs {
            for k in 0..REC {
                result[k] += recs[i * REC + k];
            }
        }
    }
}

/// One queue's slice of the EP problem.
struct EpSlice {
    embar: Kernel,
    reduce: Kernel,
    records: Buffer,
    result: Buffer,
    first_pair: u64,
    items: u64,
}

/// The EP application: N independent queues, one epoch.
pub struct EpApp {
    queues: Vec<SchedQueue>,
    slices: Vec<EpSlice>,
    class: Class,
}

impl EpApp {
    /// Build EP for `class` over `nqueues` queues under `plan`.
    pub fn new(
        ctx: &MulticlContext,
        class: Class,
        nqueues: usize,
        plan: &QueuePlan,
    ) -> ClResult<EpApp> {
        let meta = crate::suite::info("EP").expect("EP in suite");
        let queues = make_queues(ctx, plan, nqueues, meta.flags)?;
        let program =
            ctx.create_program(vec![Arc::new(Embar) as Arc<dyn KernelBody>, Arc::new(EpReduce)])?;
        let total_items = total_pairs(class) / PAIRS_PER_ITEM;
        let per_queue = total_items.div_ceil(nqueues as u64);
        let mut slices = Vec::with_capacity(nqueues);
        for qi in 0..nqueues as u64 {
            let first_item = qi * per_queue;
            let items = per_queue.min(total_items.saturating_sub(first_item));
            let wgs = items.div_ceil(LOCAL).max(1) as usize;
            let records = ctx.create_buffer_of::<f64>(wgs * REC)?;
            let result = ctx.create_buffer_of::<f64>(REC)?;
            let embar = program.create_kernel("embar")?;
            embar.set_arg(0, ArgValue::BufferMut(records.clone()))?;
            embar.set_arg(1, ArgValue::U64(first_item * PAIRS_PER_ITEM))?;
            embar.set_arg(2, ArgValue::U64(items))?;
            let reduce = program.create_kernel("ep_reduce")?;
            reduce.set_arg(0, ArgValue::Buffer(records.clone()))?;
            reduce.set_arg(1, ArgValue::BufferMut(result.clone()))?;
            reduce.set_arg(2, ArgValue::U64(items))?;
            slices.push(EpSlice {
                embar,
                reduce,
                records,
                result,
                first_pair: first_item * PAIRS_PER_ITEM,
                items,
            });
        }
        Ok(EpApp { queues, slices, class })
    }

    /// Enqueue the single kernel epoch on every queue and synchronize.
    pub fn run(&mut self) -> ClResult<()> {
        for (q, s) in self.queues.iter().zip(&self.slices) {
            let nd = NdRange::d1(s.items.max(1), LOCAL);
            q.enqueue_ndrange(&s.embar, nd)?;
            q.enqueue_ndrange(&s.reduce, NdRange::d1(LOCAL, LOCAL))?;
        }
        for q in &self.queues {
            q.finish();
        }
        Ok(())
    }

    /// Verify: per-queue reduced sums and bins must match the serial
    /// reference over the same pair range.
    pub fn verify(&self) -> bool {
        for s in &self.slices {
            let got = s.result.host_snapshot::<f64>();
            let (mut sx, mut sy, mut bins) = (0.0, 0.0, [0u64; 10]);
            for i in 0..s.items {
                let (px, py, pb) =
                    gaussian_tally(SEED, s.first_pair + i * PAIRS_PER_ITEM, PAIRS_PER_ITEM);
                sx += px;
                sy += py;
                for (b, p) in bins.iter_mut().zip(pb) {
                    *b += p;
                }
            }
            if (got[0] - sx).abs() > 1e-8 * sx.abs().max(1.0) {
                return false;
            }
            if (got[1] - sy).abs() > 1e-8 * sy.abs().max(1.0) {
                return false;
            }
            for (k, b) in bins.iter().enumerate() {
                if (got[2 + k] - *b as f64).abs() > 0.5 {
                    return false;
                }
            }
            let _ = &s.records;
        }
        true
    }

    /// The class this instance was built for.
    pub fn class(&self) -> Class {
        self.class
    }

    /// Consume the app, returning its queues (for final-device inspection).
    pub fn into_queues(self) -> Vec<SchedQueue> {
        self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::Platform;
    use multicl::{ContextSchedPolicy, ProfileCache, SchedOptions};

    fn ctx(tag: &str) -> (Platform, MulticlContext) {
        let platform = Platform::paper_node();
        let dir = std::env::temp_dir().join(format!("npb-ep-test-{tag}-{}", std::process::id()));
        let options =
            SchedOptions { profile_cache: ProfileCache::at(dir), ..SchedOptions::default() };
        let c =
            MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options).unwrap();
        (platform, c)
    }

    #[test]
    fn ep_verifies_under_auto_scheduling() {
        let (_p, c) = ctx("auto");
        let mut app = EpApp::new(&c, Class::S, 2, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        assert!(app.verify());
    }

    #[test]
    fn ep_verifies_on_every_device_manually() {
        let (p, c) = ctx("manual");
        for dev in p.node().device_ids() {
            let mut app = EpApp::new(&c, Class::S, 1, &QueuePlan::Manual(vec![dev])).unwrap();
            app.run().unwrap();
            assert!(app.verify(), "EP wrong on {dev}");
        }
    }

    #[test]
    fn ep_autofit_prefers_gpus() {
        let (p, c) = ctx("prefers-gpu");
        let mut app = EpApp::new(&c, Class::W, 2, &QueuePlan::Auto).unwrap();
        app.run().unwrap();
        let gpus = p.node().gpus();
        for q in app.into_queues() {
            assert!(gpus.contains(&q.device()), "EP queue landed on {}", q.device());
        }
    }

    #[test]
    fn ep_work_scales_with_class() {
        assert_eq!(total_pairs(Class::W) / total_pairs(Class::S), 4);
        assert_eq!(total_pairs(Class::D) / total_pairs(Class::C), 4);
    }

    #[test]
    fn tally_is_deterministic_and_splittable() {
        // Tallying [0, 2N) must equal tallying [0, N) + [N, 2N).
        let n = 512;
        let (sx, sy, bins) = gaussian_tally(SEED, 0, 2 * n);
        let (sx1, sy1, b1) = gaussian_tally(SEED, 0, n);
        let (sx2, sy2, b2) = gaussian_tally(SEED, n, n);
        assert!((sx - (sx1 + sx2)).abs() < 1e-9);
        assert!((sy - (sy1 + sy2)).abs() < 1e-9);
        for k in 0..10 {
            assert_eq!(bins[k], b1[k] + b2[k]);
        }
    }

    #[test]
    fn acceptance_rate_is_near_pi_over_4() {
        let (_, _, bins) = gaussian_tally(SEED, 0, 20_000);
        let accepted: u64 = bins.iter().sum();
        let rate = accepted as f64 / 20_000.0;
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.01, "rate={rate}");
    }
}

//! A tiny deterministic xorshift64* generator.
//!
//! The workspace builds offline with no external crates, so randomized tests
//! and the load generator drive their input generation from this instead of a
//! property-testing framework or `rand`. Seeds are fixed by callers: failures
//! and experiments reproduce exactly.

/// xorshift64* state.
#[derive(Debug)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeded generator (zero seeds are nudged to 1).
    pub fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Exponentially distributed float with the given rate (mean `1/rate`),
    /// via inverse-transform sampling. Used for Poisson arrival processes in
    /// the load generator. `rate` must be positive.
    pub fn exp_f64(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // 1 - f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.f64()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
            let v = a.range_u64(5, 10);
            b.range_u64(5, 10);
            assert!((5..10).contains(&v));
            let f = a.f64();
            b.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exponential_sampling_is_positive_with_correct_mean() {
        let mut r = XorShift::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.exp_f64(4.0);
            assert!(x.is_finite() && x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        // Mean of Exp(4) is 0.25; generous tolerance for a smoke test.
        assert!((mean - 0.25).abs() < 0.02, "mean {mean}");
    }
}

//! Minimal locking primitives with a `parking_lot`-style API over `std`.
//!
//! The workspace builds offline with no external crates; this shim gives the
//! runtime crates the ergonomic `lock() -> guard` surface they were written
//! against. Poisoning is deliberately ignored: a panic while holding one of
//! these locks only ever leaves behind plain data (caches, counters,
//! buffered commands), never a broken invariant that the next holder could
//! trip over — which matches `parking_lot` semantics.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (ignoring poison) instead of a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments_are_not_lost() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock() must survive poisoning");
    }
}

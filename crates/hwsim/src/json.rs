//! A small self-contained JSON value, writer, and parser.
//!
//! The workspace builds offline with no external crates, so everything that
//! serializes (the device-profile cache, the telemetry event stream, the
//! Chrome-tracing exporters) goes through this module instead of
//! `serde_json`. The surface is deliberately tiny: a tree [`Json`] value,
//! [`Json::dump`] to text, and [`Json::parse`] back. Numbers are `f64`
//! (every quantity we serialize — nanoseconds, byte counts, bandwidths —
//! fits in the 2^53 integer range).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array of `f64` numbers.
    pub fn num_arr(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// Serialize to compact JSON text.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text. Returns `None` on any syntax error or trailing
    /// garbage.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// Escape a string for embedding in JSON text (without the surrounding
/// quotes). Handles quotes, backslashes, and all control characters.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    out.push_str(&escape(s));
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match *bytes.get(*pos)? {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(members));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    let mut pending_high: Option<u16> = None;
    loop {
        let b = *bytes.get(*pos)?;
        match b {
            b'"' => {
                *pos += 1;
                if pending_high.is_some() {
                    out.push('\u{FFFD}');
                }
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *bytes.get(*pos)?;
                *pos += 1;
                let simple = match esc {
                    b'"' => Some('"'),
                    b'\\' => Some('\\'),
                    b'/' => Some('/'),
                    b'b' => Some('\u{0008}'),
                    b'f' => Some('\u{000C}'),
                    b'n' => Some('\n'),
                    b'r' => Some('\r'),
                    b't' => Some('\t'),
                    b'u' => None,
                    _ => return None,
                };
                if let Some(c) = simple {
                    if pending_high.take().is_some() {
                        out.push('\u{FFFD}');
                    }
                    out.push(c);
                    continue;
                }
                let hex = bytes.get(*pos..*pos + 4)?;
                *pos += 4;
                let unit = u16::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                match pending_high.take() {
                    Some(high) if (0xDC00..=0xDFFF).contains(&unit) => {
                        let c = 0x10000
                            + ((u32::from(high) - 0xD800) << 10)
                            + (u32::from(unit) - 0xDC00);
                        out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                    }
                    Some(_) => {
                        out.push('\u{FFFD}');
                        if (0xD800..=0xDBFF).contains(&unit) {
                            pending_high = Some(unit);
                        } else {
                            out.push(char::from_u32(u32::from(unit)).unwrap_or('\u{FFFD}'));
                        }
                    }
                    None if (0xD800..=0xDBFF).contains(&unit) => pending_high = Some(unit),
                    None => out.push(char::from_u32(u32::from(unit)).unwrap_or('\u{FFFD}')),
                }
            }
            _ => {
                if pending_high.take().is_some() {
                    out.push('\u{FFFD}');
                }
                // Consume one full UTF-8 character.
                let len = utf8_len(b)?;
                let s = std::str::from_utf8(bytes.get(*pos..*pos + len)?).ok()?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Convenience: map an object's members into a `BTreeMap` of strings to
/// values (useful for order-insensitive comparisons in tests).
pub fn to_map(value: &Json) -> Option<BTreeMap<String, Json>> {
    match value {
        Json::Obj(members) => Some(members.iter().cloned().collect()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.dump()), Some(v), "{text}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj([
            ("name", Json::from("kernel \"x\"\n")),
            ("sizes", Json::num_arr([1.0, 1024.0, 2.5])),
            ("inner", Json::obj([("flag", Json::Bool(true)), ("none", Json::Null)])),
        ]);
        let text = v.dump();
        assert_eq!(Json::parse(&text), Some(v.clone()));
        assert_eq!(v.get("name").unwrap().as_str(), Some("kernel \"x\"\n"));
        assert_eq!(v.get("sizes").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn control_characters_are_escaped() {
        let v = Json::Str("a\u{1}b\tc".into());
        let text = v.dump();
        assert!(text.contains("\\u0001"), "{text}");
        assert!(text.contains("\\t"));
        assert_eq!(Json::parse(&text), Some(v));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""é""#), Some(Json::Str("é".into())));
        assert_eq!(Json::parse(r#""😀""#), Some(Json::Str("😀".into())));
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert_eq!(Json::parse(text), None, "{text:?}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(1e9).dump(), "1000000000");
        assert_eq!(Json::parse("1000000000").unwrap().as_u64(), Some(1_000_000_000));
    }

    #[test]
    fn whitespace_tolerant() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}

//! Execution traces: a flat, timestamped record of every command the engine
//! ran, with enough labeling to regenerate the paper's accounting figures
//! (kernel→device distribution, profiling-vs-application overhead,
//! per-iteration breakdowns).

use crate::device::DeviceId;
use crate::engine::{CommandKind, EventStamp};
use crate::time::SimDuration;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One executed command.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Device that executed the command.
    pub device: DeviceId,
    /// Logical command queue it came from.
    pub queue: usize,
    /// What it was.
    pub kind: CommandKind,
    /// When it ran.
    pub stamp: EventStamp,
    /// Free-form label active at submission (e.g. `"profiling"`).
    pub tag: Option<Arc<str>>,
}

impl TraceRecord {
    /// True if the record is a kernel execution.
    pub fn is_kernel(&self) -> bool {
        matches!(self.kind, CommandKind::Kernel { .. })
    }

    /// True if the record carries the given tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tag.as_deref() == Some(tag)
    }

    /// True if the record's tag starts with the given prefix.
    pub fn tag_starts_with(&self, prefix: &str) -> bool {
        self.tag.as_deref().is_some_and(|t| t.starts_with(prefix))
    }

    /// Bytes moved, for transfer records; 0 otherwise.
    pub fn transfer_bytes(&self) -> u64 {
        match self.kind {
            CommandKind::Transfer { bytes, .. } => bytes,
            _ => 0,
        }
    }

    /// This record as one Chrome-tracing complete event (`"ph":"X"`) JSON
    /// object. Categories: `kernel`, `transfer`, or `marker`; names and tags
    /// are fully escaped (including control characters). The telemetry
    /// exporter composes these with flow and counter events.
    pub fn chrome_event_json(&self) -> String {
        let name = match &self.kind {
            CommandKind::Kernel { name } => crate::json::escape(name),
            CommandKind::Transfer { kind, bytes } => format!("{kind:?} {bytes}B"),
            CommandKind::Marker => "marker".to_string(),
        };
        let cat = match self.kind {
            CommandKind::Kernel { .. } => "kernel",
            CommandKind::Transfer { .. } => "transfer",
            CommandKind::Marker => "marker",
        };
        let tag = self.tag.as_deref().unwrap_or("");
        format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                "\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},",
                "\"args\":{{\"queue\":{},\"tag\":\"{}\"}}}}"
            ),
            name,
            cat,
            self.stamp.start.as_nanos(),
            self.stamp.duration().as_nanos().max(1),
            self.device.index(),
            self.queue,
            crate::json::escape(tag),
        )
    }
}

/// An append-only list of [`TraceRecord`]s with aggregation helpers.
///
/// By default the trace grows without bound. Long serving runs can set a
/// record capacity ([`Trace::set_capacity`]); the *oldest* records are then
/// evicted in batches and counted in [`Trace::dropped`]. Consumers that walk
/// the trace incrementally should track positions with the monotonic
/// [`Trace::total_pushed`] counter and read via [`Trace::records_since`],
/// which stays correct across evictions.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Retained records in submission order (the newest
    /// `total_pushed - dropped` pushes).
    pub records: Vec<TraceRecord>,
    capacity: Option<usize>,
    total: u64,
    dropped: u64,
}

impl Trace {
    /// Append a record, evicting the oldest half of the retained records if
    /// a capacity is set and reached.
    pub fn push(&mut self, r: TraceRecord) {
        if let Some(cap) = self.capacity {
            if self.records.len() >= cap.max(2) {
                let evict = self.records.len() / 2;
                self.records.drain(..evict);
                self.dropped += evict as u64;
            }
        }
        self.total += 1;
        self.records.push(r);
    }

    /// Bound the retained records to roughly `cap` (None = unbounded).
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        self.capacity = cap;
    }

    /// Total records ever pushed (monotonic; includes evicted records).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The records pushed at or after monotonic position `since` (as
    /// reported by [`Trace::total_pushed`]) that are still retained.
    pub fn records_since(&self, since: u64) -> &[TraceRecord] {
        let first_retained = self.total - self.records.len() as u64;
        let start = since.saturating_sub(first_retained).min(self.records.len() as u64);
        &self.records[start as usize..]
    }

    /// Drain into a fresh trace, preserving the capacity configuration on
    /// `self` and resetting the counters.
    pub fn take(&mut self) -> Trace {
        let cap = self.capacity;
        std::mem::replace(self, Trace { records: Vec::new(), capacity: cap, total: 0, dropped: 0 })
    }

    /// Number of kernel executions per device (the quantity plotted in
    /// Figure 5).
    pub fn kernel_distribution(&self) -> BTreeMap<DeviceId, usize> {
        let mut out = BTreeMap::new();
        for r in self.records.iter().filter(|r| r.is_kernel()) {
            *out.entry(r.device).or_insert(0) += 1;
        }
        out
    }

    /// Total device time spent in records matching `pred`.
    pub fn time_where(&self, mut pred: impl FnMut(&TraceRecord) -> bool) -> SimDuration {
        self.records.iter().filter(|r| pred(r)).map(|r| r.stamp.duration()).sum()
    }

    /// Total bytes moved by transfer records matching `pred`.
    pub fn bytes_where(&self, mut pred: impl FnMut(&TraceRecord) -> bool) -> u64 {
        self.records.iter().filter(|r| pred(r)).map(|r| r.transfer_bytes()).sum()
    }

    /// Count of transfer commands matching `pred`.
    pub fn transfers_where(&self, mut pred: impl FnMut(&TraceRecord) -> bool) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.kind, CommandKind::Transfer { .. }) && pred(r))
            .count()
    }

    /// Kernel counts per device restricted to records with tags matching
    /// `pred` — used to separate profiling launches from application launches.
    pub fn kernel_distribution_where(
        &self,
        mut pred: impl FnMut(&TraceRecord) -> bool,
    ) -> BTreeMap<DeviceId, usize> {
        let mut out = BTreeMap::new();
        for r in self.records.iter().filter(|r| r.is_kernel()) {
            if pred(r) {
                *out.entry(r.device).or_insert(0) += 1;
            }
        }
        out
    }
}

impl Trace {
    /// Export the trace as Chrome-tracing JSON (load in `chrome://tracing`
    /// or [Perfetto](https://ui.perfetto.dev)): one row per device, one
    /// complete event per command, with the tag and queue id as arguments.
    /// Virtual nanoseconds map to microseconds in the viewer's timeline.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.chrome_event_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::topology::TransferKind;

    fn rec(dev: usize, kind: CommandKind, dur_ms: u64, tag: Option<&str>) -> TraceRecord {
        let start = SimTime::ZERO;
        let end = start + SimDuration::from_millis(dur_ms);
        TraceRecord {
            device: DeviceId(dev),
            queue: 0,
            kind,
            stamp: EventStamp { queued: start, submit: start, start, end },
            tag: tag.map(Arc::from),
        }
    }

    fn kernel(name: &str) -> CommandKind {
        CommandKind::Kernel { name: Arc::from(name) }
    }

    #[test]
    fn kernel_distribution_counts_per_device() {
        let mut t = Trace::default();
        t.push(rec(0, kernel("a"), 1, None));
        t.push(rec(0, kernel("b"), 1, None));
        t.push(rec(1, kernel("c"), 1, None));
        t.push(rec(
            1,
            CommandKind::Transfer { kind: TransferKind::HostToDevice, bytes: 8 },
            1,
            None,
        ));
        let d = t.kernel_distribution();
        assert_eq!(d[&DeviceId(0)], 2);
        assert_eq!(d[&DeviceId(1)], 1);
    }

    #[test]
    fn tagged_time_accounting() {
        let mut t = Trace::default();
        t.push(rec(0, kernel("a"), 10, Some("profiling")));
        t.push(rec(0, kernel("a"), 30, None));
        let prof = t.time_where(|r| r.has_tag("profiling"));
        let app = t.time_where(|r| r.tag.is_none());
        assert_eq!(prof, SimDuration::from_millis(10));
        assert_eq!(app, SimDuration::from_millis(30));
    }

    #[test]
    fn transfer_byte_accounting() {
        let mut t = Trace::default();
        t.push(rec(
            0,
            CommandKind::Transfer { kind: TransferKind::DeviceToHost, bytes: 100 },
            1,
            None,
        ));
        t.push(rec(
            1,
            CommandKind::Transfer { kind: TransferKind::HostToDevice, bytes: 50 },
            1,
            None,
        ));
        assert_eq!(t.bytes_where(|_| true), 150);
        assert_eq!(t.transfers_where(|r| r.device == DeviceId(1)), 1);
    }

    #[test]
    fn chrome_json_export_is_valid_and_complete() {
        let mut t = Trace::default();
        t.push(rec(0, kernel("my \"kernel\""), 2, Some("profiling")));
        t.push(rec(
            1,
            CommandKind::Transfer { kind: TransferKind::HostToDevice, bytes: 64 },
            1,
            None,
        ));
        let json = t.to_chrome_json();
        // Structure: a JSON array with one object per record.
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("HostToDevice 64B"));
        assert!(json.contains("profiling"));
        // The quote in the kernel name is escaped.
        assert!(json.contains("my \\\"kernel\\\""));
    }

    #[test]
    fn chrome_json_gives_markers_their_own_category() {
        let mut t = Trace::default();
        t.push(rec(0, CommandKind::Marker, 1, Some("barrier")));
        t.push(rec(
            0,
            CommandKind::Transfer { kind: TransferKind::DeviceToHost, bytes: 8 },
            1,
            None,
        ));
        let json = t.to_chrome_json();
        assert!(json.contains("\"name\":\"marker\",\"cat\":\"marker\""), "{json}");
        assert_eq!(json.matches("\"cat\":\"transfer\"").count(), 1);
    }

    #[test]
    fn chrome_json_escapes_control_characters() {
        let mut t = Trace::default();
        t.push(rec(0, kernel("bad\nname\t"), 1, Some("tab\there")));
        let json = t.to_chrome_json();
        assert!(!json.contains('\n'), "raw newline leaked: {json:?}");
        assert!(!json.contains('\t'), "raw tab leaked: {json:?}");
        // Still parseable JSON that round-trips the name.
        let parsed = crate::json::Json::parse(&json).expect("valid JSON");
        let ev = &parsed.as_arr().unwrap()[0];
        assert_eq!(ev.get("name").unwrap().as_str(), Some("bad\nname\t"));
        assert_eq!(ev.get("args").unwrap().get("tag").unwrap().as_str(), Some("tab\there"));
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let mut t = Trace::default();
        t.set_capacity(Some(4));
        for i in 0..10 {
            t.push(rec(0, kernel(&format!("k{i}")), 1, None));
        }
        assert_eq!(t.total_pushed(), 10);
        assert!(t.records.len() <= 4 + 2, "retained {}", t.records.len());
        assert_eq!(t.dropped() + t.records.len() as u64, 10);
        // The newest record is always retained.
        assert!(matches!(&t.records.last().unwrap().kind,
            CommandKind::Kernel { name } if &**name == "k9"));
    }

    #[test]
    fn records_since_is_stable_across_evictions() {
        let mut t = Trace::default();
        t.set_capacity(Some(4));
        for i in 0..3 {
            t.push(rec(0, kernel(&format!("a{i}")), 1, None));
        }
        let pos = t.total_pushed();
        for i in 0..5 {
            t.push(rec(0, kernel(&format!("b{i}")), 1, None));
        }
        // Everything since `pos` that survived eviction is some suffix of
        // the b-records, ending at b4.
        let since = t.records_since(pos);
        assert!(!since.is_empty());
        for r in since {
            assert!(matches!(&r.kind, CommandKind::Kernel { name } if name.starts_with('b')));
        }
        // A position in the future yields an empty slice, not a panic.
        assert!(t.records_since(t.total_pushed() + 5).is_empty());
    }

    #[test]
    fn take_preserves_capacity_and_resets_counters() {
        let mut t = Trace::default();
        t.set_capacity(Some(8));
        t.push(rec(0, kernel("a"), 1, None));
        let old = t.take();
        assert_eq!(old.records.len(), 1);
        assert_eq!(t.total_pushed(), 0);
        t.push(rec(0, kernel("b"), 1, None));
        assert_eq!(t.records.len(), 1);
        // Capacity still applies after take().
        for i in 0..20 {
            t.push(rec(0, kernel(&format!("c{i}")), 1, None));
        }
        assert!(t.records.len() <= 10);
    }

    #[test]
    fn tag_prefix_matching() {
        let r = rec(0, kernel("a"), 1, Some("iter:3"));
        assert!(r.tag_starts_with("iter:"));
        assert!(!r.tag_starts_with("profiling"));
    }
}

//! Prebuilt node configurations.
//!
//! [`NodeConfig::paper_node`] reconstructs the CLUSTER'15 testbed:
//! a dual-socket oct-core AMD Opteron 6134 ("Magny-Cours") with two NVIDIA
//! Tesla C2050 GPUs, exposed as three OpenCL devices (1 CPU + 2 GPUs).
//! The network interface sits near socket 0 and both GPUs have affinity to
//! socket 1, creating the nonuniform host–device distances the paper's device
//! profiler measures.

use crate::device::{DeviceId, DeviceSpec, DeviceType};
use crate::time::SimDuration;
use crate::topology::{LinkSpec, Topology};

/// A complete node: device list plus interconnect topology.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Human-readable name used to key the device-profile cache.
    pub name: String,
    /// The OpenCL devices, indexed by [`DeviceId`].
    pub devices: Vec<DeviceSpec>,
    /// Interconnect description.
    pub topology: Topology,
}

impl NodeConfig {
    /// The paper's experimental node (§VI-A): 1 CPU device (16 Opteron 6134
    /// cores across two sockets, 32 GB) + 2 GPU devices (Tesla C2050, 3 GB,
    /// 144 GB/s, PCIe gen2 on socket 1).
    pub fn paper_node() -> NodeConfig {
        let cpu = DeviceSpec {
            name: "AMD Opteron 6134 x2 (16 cores)".into(),
            device_type: DeviceType::Cpu,
            compute_units: 16,
            // 16 cores * 2.3 GHz * 4-wide SSE * 2 (mul+add) ≈ 294 SP GFLOP/s.
            peak_gflops: 294.0,
            peak_gflops_dp: 147.0,
            // Dual-socket DDR3-1333, 4 channels/socket ≈ 42 GB/s aggregate.
            mem_bandwidth_gbs: 42.0,
            mem_capacity: 32 << 30,
            concurrent_workgroups: 16,
            launch_overhead: SimDuration::from_micros(4),
            // A CPU core is essentially fully utilized by a single resident
            // work-item: it pipelines instructions without needing SIMT-style
            // latency hiding. (GPUs are the ones that need many resident
            // items per compute unit.)
            saturation_items: 0.5,
            socket: None,
        };
        let gpu = |i: usize| DeviceSpec {
            name: format!("NVIDIA Tesla C2050 #{i}"),
            device_type: DeviceType::Gpu,
            compute_units: 14,
            peak_gflops: 1030.0,
            peak_gflops_dp: 515.0,
            mem_bandwidth_gbs: 144.0,
            mem_capacity: 3 << 30,
            // 14 SMs * 8 resident workgroups at typical occupancy.
            concurrent_workgroups: 112,
            launch_overhead: SimDuration::from_micros(9),
            // A Fermi SM wants ~12 warps resident to hide ALU latency.
            saturation_items: 384.0,
            socket: Some(1),
        };
        NodeConfig {
            name: "cluster15-opteron6134-2xc2050".into(),
            devices: vec![cpu, gpu(0), gpu(1)],
            topology: Topology {
                sockets: 2,
                host_socket: 0,
                device_links: vec![
                    // CPU device: unused (host transfers use host_memcpy).
                    LinkSpec::new(1, 20.0),
                    // PCIe gen2 x16 ≈ 6 GB/s sustained, ~15 µs setup.
                    LinkSpec::new(15, 6.0),
                    LinkSpec::new(15, 6.0),
                ],
                // HyperTransport hop: ~25% bandwidth loss, extra 5 µs.
                cross_socket_derate: 0.75,
                cross_socket_latency: SimDuration::from_micros(5),
                // Host memcpy: ~10 GB/s effective (read+write), 1 µs setup.
                host_memcpy: LinkSpec::new(1, 10.0),
            },
        }
    }

    /// Device fission (`clCreateSubDevices`, paper §IV-D): return a node in
    /// which device `dev` is replaced by `parts` equal sub-devices, each
    /// with a `1/parts` share of the compute units, concurrent workgroups,
    /// and memory bandwidth (partition-equally semantics). Memory capacity
    /// is shared, not divided — sub-devices of one parent address the same
    /// physical memory. The scheduler "handles all cl_device_id objects
    /// uniformly", so sub-devices need no special casing anywhere else.
    ///
    /// Returns `None` if `parts` is 0, exceeds the device's compute units,
    /// or doesn't divide them evenly (the `PARTITION_EQUALLY` rule).
    pub fn fission(&self, dev: DeviceId, parts: u32) -> Option<NodeConfig> {
        let spec = self.devices.get(dev.index())?;
        if parts == 0 || parts > spec.compute_units || !spec.compute_units.is_multiple_of(parts) {
            return None;
        }
        let mut node = self.clone();
        node.name = format!("{}+fission[{}x{}]", self.name, dev, parts);
        let parent = node.devices.remove(dev.index());
        let parent_link = node.topology.device_links.remove(dev.index());
        let f = f64::from(parts);
        for i in 0..parts {
            let sub = DeviceSpec {
                name: format!("{} [sub {i}/{parts}]", parent.name),
                compute_units: parent.compute_units / parts,
                peak_gflops: parent.peak_gflops / f,
                peak_gflops_dp: parent.peak_gflops_dp / f,
                mem_bandwidth_gbs: parent.mem_bandwidth_gbs / f,
                concurrent_workgroups: (parent.concurrent_workgroups / parts).max(1),
                ..parent.clone()
            };
            node.devices.insert(dev.index() + i as usize, sub);
            node.topology.device_links.insert(dev.index() + i as usize, parent_link);
        }
        Some(node)
    }

    /// The paper's testbed extended with an Intel Xeon Phi-style
    /// coprocessor (the third device class the paper's introduction names).
    /// The Phi behaves like a very wide CPU: many simple cores, good
    /// bandwidth, strong dependence on vectorization.
    pub fn paper_node_with_phi() -> NodeConfig {
        let mut node = Self::paper_node();
        node.name = "cluster15-opteron6134-2xc2050+phi".into();
        node.devices.push(DeviceSpec {
            name: "Intel Xeon Phi 5110P".into(),
            device_type: DeviceType::Accelerator,
            compute_units: 60,
            // 60 cores * 1.05 GHz * 16-wide * 2 ≈ 2 TF SP, half DP.
            peak_gflops: 2016.0,
            peak_gflops_dp: 1008.0,
            mem_bandwidth_gbs: 160.0,
            mem_capacity: 8 << 30,
            concurrent_workgroups: 240,
            launch_overhead: SimDuration::from_micros(12),
            // In-order cores with 4-way SMT: a handful of resident items
            // per core suffice.
            saturation_items: 8.0,
            socket: Some(0),
        });
        node.topology.device_links.push(LinkSpec::new(15, 6.0));
        node
    }

    /// A homogeneous multi-GPU node (used by ablation examples/tests).
    pub fn gpu_node(gpus: usize) -> NodeConfig {
        let mut base = Self::paper_node();
        let gpu = base.devices[1].clone();
        base.name = format!("homogeneous-{gpus}xgpu");
        base.devices = (0..gpus)
            .map(|i| {
                let mut g = gpu.clone();
                g.name = format!("GPU #{i}");
                g.socket = Some(i % 2);
                g
            })
            .collect();
        base.topology.device_links = vec![LinkSpec::new(15, 6.0); gpus];
        base
    }

    /// Number of devices in the node.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(DeviceId)
    }

    /// The spec for `dev`.
    #[inline]
    pub fn spec(&self, dev: DeviceId) -> &DeviceSpec {
        &self.devices[dev.index()]
    }

    /// Ids of all devices of the given type.
    pub fn devices_of_type(&self, ty: DeviceType) -> Vec<DeviceId> {
        self.device_ids().filter(|d| self.spec(*d).device_type == ty).collect()
    }

    /// First CPU device, if any.
    pub fn cpu(&self) -> Option<DeviceId> {
        self.devices_of_type(DeviceType::Cpu).first().copied()
    }

    /// All GPU devices.
    pub fn gpus(&self) -> Vec<DeviceId> {
        self.devices_of_type(DeviceType::Gpu)
    }

    /// A configuration fingerprint: the profile cache is invalidated when the
    /// system configuration changes (paper §V-A, "the benchmarks are run
    /// again only if the system configuration changes").
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{}|", self.name);
        for d in &self.devices {
            let _ = write!(
                s,
                "{}:{}:{}cu:{:.0}gf:{:.0}gbs;",
                d.name, d.device_type, d.compute_units, d.peak_gflops, d.mem_bandwidth_gbs
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_has_one_cpu_and_two_gpus() {
        let node = NodeConfig::paper_node();
        assert_eq!(node.device_count(), 3);
        assert_eq!(node.cpu(), Some(DeviceId(0)));
        assert_eq!(node.gpus(), vec![DeviceId(1), DeviceId(2)]);
    }

    #[test]
    fn paper_node_gpus_live_on_socket_1() {
        let node = NodeConfig::paper_node();
        for g in node.gpus() {
            assert_eq!(node.spec(g).socket, Some(1));
        }
        assert_eq!(node.topology.host_socket, 0);
    }

    #[test]
    fn paper_node_capacities_match_testbed() {
        let node = NodeConfig::paper_node();
        assert_eq!(node.spec(DeviceId(0)).mem_capacity, 32 << 30);
        assert_eq!(node.spec(DeviceId(1)).mem_capacity, 3 << 30);
    }

    #[test]
    fn phi_node_adds_an_accelerator_device() {
        let node = NodeConfig::paper_node_with_phi();
        assert_eq!(node.device_count(), 4);
        let phi = node.devices_of_type(DeviceType::Accelerator);
        assert_eq!(phi.len(), 1);
        assert_eq!(node.topology.device_links.len(), 4);
        assert_ne!(node.fingerprint(), NodeConfig::paper_node().fingerprint());
    }

    #[test]
    fn gpu_node_builder_produces_requested_count() {
        let node = NodeConfig::gpu_node(4);
        assert_eq!(node.device_count(), 4);
        assert!(node.cpu().is_none());
        assert_eq!(node.gpus().len(), 4);
    }

    #[test]
    fn fission_splits_compute_resources_equally() {
        let node = NodeConfig::paper_node();
        let cpu = node.cpu().unwrap();
        let split = node.fission(cpu, 2).expect("16 CUs divide by 2");
        assert_eq!(split.device_count(), 4);
        let (a, b) = (split.spec(DeviceId(0)), split.spec(DeviceId(1)));
        assert_eq!(a.compute_units, 8);
        assert_eq!(b.compute_units, 8);
        assert_eq!(a.peak_gflops, node.spec(cpu).peak_gflops / 2.0);
        // Memory capacity is shared, not divided.
        assert_eq!(a.mem_capacity, node.spec(cpu).mem_capacity);
        // The GPUs shifted but are unchanged.
        assert_eq!(split.gpus().len(), 2);
        assert_eq!(split.topology.device_links.len(), 4);
    }

    #[test]
    fn fission_rejects_uneven_partitions() {
        let node = NodeConfig::paper_node();
        let cpu = node.cpu().unwrap();
        assert!(node.fission(cpu, 0).is_none());
        assert!(node.fission(cpu, 3).is_none(), "16 CUs don't divide by 3");
        assert!(node.fission(cpu, 32).is_none(), "more parts than CUs");
        assert!(node.fission(DeviceId(9), 2).is_none(), "unknown device");
    }

    #[test]
    fn fissioned_subdevices_sum_to_the_parent() {
        let node = NodeConfig::paper_node();
        let gpu = node.gpus()[0];
        let split = node.fission(gpu, 2).unwrap();
        let subs = [DeviceId(1), DeviceId(2)];
        let total_gf: f64 = subs.iter().map(|d| split.spec(*d).peak_gflops).sum();
        assert!((total_gf - node.spec(gpu).peak_gflops).abs() < 1e-9);
        let fingerprint_changed = split.fingerprint() != node.fingerprint();
        assert!(fingerprint_changed, "fission must invalidate the profile cache");
    }

    #[test]
    fn fingerprint_changes_with_configuration() {
        let a = NodeConfig::paper_node();
        let mut b = NodeConfig::paper_node();
        b.devices.pop();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}

//! Virtual time for the discrete-event simulation.
//!
//! All simulation timestamps are nanoseconds held in a `u64`. At nanosecond
//! resolution a `u64` covers ~584 years of virtual time, far beyond any
//! experiment here. Keeping integer time (instead of `f64`) makes the engine
//! exactly deterministic and associative: event ordering never depends on
//! floating-point summation order.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point on the virtual timeline, in nanoseconds since t=0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since t=0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since t=0 as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that defensive "how long since" queries are always safe.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or NaN inputs are clamped
    /// to zero (durations are physical quantities); `+inf` and overflow
    /// saturate at the maximum representable duration.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = (s * 1e9).round();
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction; never underflows.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Ratio of two durations as a float. Returns 0.0 when `other` is zero.
    #[inline]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is possible.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", human_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", human_ns(self.0))
    }
}

/// Render a nanosecond count with an adaptive unit (ns, µs, ms, s).
fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrip() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!(((t + d) - t).as_nanos(), 3_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_nonphysical_values() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).as_nanos(), u64::MAX);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(late.saturating_since(early).as_nanos(), 10);
        assert_eq!(early.saturating_since(late).as_nanos(), 0);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00µs");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let d = SimDuration::from_millis(5);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_millis(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}

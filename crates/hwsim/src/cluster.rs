//! Multi-node fleet configurations: N simulated nodes joined by an
//! inter-node interconnect.
//!
//! The paper's substrate, SnuCL, was built for *clusters*: one host
//! process schedules command queues across the OpenCL devices of many
//! nodes, and every cross-node data movement pays the network. This module
//! describes such a fleet — each node is a full [`NodeConfig`] (its own
//! sockets, GPUs, and PCIe topology) and the nodes are connected by an
//! [`InterconnectSpec`] with calibrated latency and bandwidth, so
//! cross-node transfers can be priced in virtual time exactly like the
//! intra-node PCIe links in [`crate::topology`].
//!
//! A fleet config is pure description: the runtime layer (`clrt::Fleet`)
//! instantiates one engine per node from it.

use crate::node::NodeConfig;
use crate::time::SimDuration;
use crate::topology::LinkSpec;

/// The inter-node network: a point-to-point link model applied to every
/// node pair (full-bisection assumption — the fat-tree networks SnuCL-class
/// clusters run on are provisioned for it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectSpec {
    /// The per-pair link (fixed latency + bandwidth-proportional term).
    pub link: LinkSpec,
    /// Per-message software overhead on each end (MPI/verbs stack, charged
    /// once per transfer on top of the wire time).
    pub host_overhead: SimDuration,
}

impl InterconnectSpec {
    /// QDR InfiniBand, the network of the CLUSTER'15 era testbeds SnuCL
    /// targeted: ~3.2 GB/s effective per direction, ~2 µs port-to-port
    /// latency, ~3 µs verbs/MPI overhead per message end-to-end.
    pub fn infiniband_qdr() -> InterconnectSpec {
        InterconnectSpec { link: LinkSpec::new(2, 3.2), host_overhead: SimDuration::from_micros(3) }
    }

    /// 10-gigabit Ethernet: ~1.1 GB/s effective, tens of microseconds of
    /// latency once the kernel network stack is involved.
    pub fn ethernet_10g() -> InterconnectSpec {
        InterconnectSpec {
            link: LinkSpec::new(30, 1.1),
            host_overhead: SimDuration::from_micros(20),
        }
    }

    /// Time to move `bytes` between two distinct nodes: software overhead
    /// plus the link's latency + wire time.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.host_overhead + self.link.transfer_time(bytes)
    }

    /// Effective bandwidth (GB/s) achieved for a transfer of `bytes` —
    /// overhead-bound for small messages, approaching the link's asymptotic
    /// bandwidth for large ones.
    pub fn effective_bandwidth_gbs(&self, bytes: u64) -> f64 {
        let t = self.transfer_time(bytes).as_secs_f64();
        if t <= 0.0 {
            self.link.bandwidth_gbs
        } else {
            bytes as f64 / t / 1e9
        }
    }
}

/// A complete fleet: the node list plus the interconnect joining them.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Human-readable fleet name (keys aggregated telemetry and caches).
    pub name: String,
    /// The nodes, indexed by node id (= shard id one layer up).
    pub nodes: Vec<NodeConfig>,
    /// The inter-node network.
    pub interconnect: InterconnectSpec,
}

impl ClusterConfig {
    /// A homogeneous fleet: `n` copies of `node` joined by `interconnect`.
    pub fn uniform(node: NodeConfig, n: usize, interconnect: InterconnectSpec) -> ClusterConfig {
        let n = n.max(1);
        ClusterConfig { name: format!("{}x{}", n, node.name), nodes: vec![node; n], interconnect }
    }

    /// The paper's testbed scaled out: `n` CLUSTER'15 nodes (1 CPU + 2
    /// GPUs each) on QDR InfiniBand — the SnuCL cluster configuration our
    /// single-node reproduction has been standing in for.
    pub fn paper_cluster(n: usize) -> ClusterConfig {
        ClusterConfig::uniform(NodeConfig::paper_node(), n, InterconnectSpec::infiniband_qdr())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total OpenCL devices across the fleet.
    pub fn device_count(&self) -> usize {
        self.nodes.iter().map(NodeConfig::device_count).sum()
    }

    /// A configuration fingerprint covering every node and the network;
    /// any change invalidates fleet-level caches (same contract as
    /// [`NodeConfig::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 * (1 + self.nodes.len()));
        let _ = write!(
            s,
            "{}|net:{}ns/{:.2}gbs+{}ns|",
            self.name,
            self.interconnect.link.latency.as_nanos(),
            self.interconnect.link.bandwidth_gbs,
            self.interconnect.host_overhead.as_nanos()
        );
        for node in &self.nodes {
            s.push_str(&node.fingerprint());
            s.push('/');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_scales_the_paper_node() {
        let fleet = ClusterConfig::paper_cluster(4);
        assert_eq!(fleet.node_count(), 4);
        assert_eq!(fleet.device_count(), 12);
        for node in &fleet.nodes {
            assert_eq!(node.device_count(), 3);
        }
    }

    #[test]
    fn uniform_floors_at_one_node() {
        let fleet =
            ClusterConfig::uniform(NodeConfig::paper_node(), 0, InterconnectSpec::infiniband_qdr());
        assert_eq!(fleet.node_count(), 1);
    }

    #[test]
    fn interconnect_is_slower_than_pcie_but_not_absurd() {
        let node = NodeConfig::paper_node();
        let ib = InterconnectSpec::infiniband_qdr();
        let bytes = 64 << 20;
        let cross_node = ib.transfer_time(bytes);
        let pcie = node.topology.host_transfer_time(crate::DeviceId(1), bytes, &node.devices);
        assert!(cross_node > pcie, "network {cross_node} should cost more than PCIe {pcie}");
        // ...but the same order of magnitude: QDR IB is ~half PCIe gen2.
        assert!(cross_node < pcie * 8, "network {cross_node} vs PCIe {pcie}");
    }

    #[test]
    fn small_messages_are_overhead_bound() {
        let ib = InterconnectSpec::infiniband_qdr();
        assert!(ib.effective_bandwidth_gbs(1024) < 0.5);
        assert!(ib.effective_bandwidth_gbs(1 << 30) > 2.5);
        assert!(ib.transfer_time(0) >= ib.host_overhead);
    }

    #[test]
    fn ethernet_is_slower_than_infiniband() {
        let bytes = 16 << 20;
        let ib = InterconnectSpec::infiniband_qdr().transfer_time(bytes);
        let eth = InterconnectSpec::ethernet_10g().transfer_time(bytes);
        assert!(eth > ib, "eth {eth} vs ib {ib}");
    }

    #[test]
    fn fingerprint_covers_nodes_and_network() {
        let a = ClusterConfig::paper_cluster(2);
        let mut b = ClusterConfig::paper_cluster(2);
        b.interconnect = InterconnectSpec::ethernet_10g();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = ClusterConfig::paper_cluster(3);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = ClusterConfig::paper_cluster(2);
        d.nodes[1].devices.pop();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}

//! Deterministic fault injection for the discrete-event engine.
//!
//! A [`FaultPlan`] describes, ahead of time and from a fixed seed, every way
//! the simulated node may misbehave:
//!
//! * **Transient transfer failures** — each DMA transfer independently fails
//!   with a configured probability (a seeded coin flip, so runs reproduce
//!   bit-identically). The transfer still occupies its copy-engine slot for
//!   the full duration: retries pay real time, exactly as on hardware where
//!   the failure surfaces at completion.
//! * **Throughput degradation** — from a given virtual instant a device runs
//!   slower by a multiplicative factor (thermal throttling, a flaky PCIe
//!   link renegotiating lanes, a co-tenant stealing SMs).
//! * **Permanent device loss** — at a given virtual instant a device dies.
//!   Commands that would start after the loss fail immediately; a command
//!   straddling the instant is truncated and fails at the loss time.
//!
//! Faulted commands *complete with an error status* instead of succeeding or
//! panicking: the engine records a [`FaultKind`] per failed event (queryable
//! through [`crate::engine::Engine::event_status`] even after the event
//! retires) and appends a [`FailureRecord`] to a per-engine failure log that
//! upper layers use to attribute failures to queues and jobs.
//!
//! With no plan installed the engine behaves exactly as before — the fault
//! path costs one `Option` check per submit.

use crate::device::DeviceId;
use crate::engine::EventId;
use crate::time::SimTime;
use crate::xrand::XorShift;

/// Why a command failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A DMA transfer failed transiently; retrying the command may succeed.
    TransientTransfer,
    /// The target device is permanently lost; retrying on it cannot succeed.
    DeviceLost,
}

impl FaultKind {
    /// OpenCL-style negative execution status for events that ended in this
    /// fault (`CL_OUT_OF_RESOURCES` for transient transfer failures,
    /// `CL_DEVICE_NOT_AVAILABLE` for device loss).
    pub fn status_code(self) -> i32 {
        match self {
            FaultKind::TransientTransfer => -5,
            FaultKind::DeviceLost => -2,
        }
    }

    /// True when a retry of the same command may succeed.
    pub fn is_transient(self) -> bool {
        matches!(self, FaultKind::TransientTransfer)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::TransientTransfer => write!(f, "transient_transfer"),
            FaultKind::DeviceLost => write!(f, "device_lost"),
        }
    }
}

/// Terminal status of a submitted command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandStatus {
    /// The command ran to completion (`CL_COMPLETE`).
    Complete,
    /// The command completed with an error.
    Failed(FaultKind),
}

impl CommandStatus {
    /// OpenCL-style execution status: `0` (`CL_COMPLETE`) on success, the
    /// fault's negative code on failure.
    pub fn code(self) -> i32 {
        match self {
            CommandStatus::Complete => 0,
            CommandStatus::Failed(k) => k.status_code(),
        }
    }

    /// True when the command completed without error.
    pub fn is_ok(self) -> bool {
        matches!(self, CommandStatus::Complete)
    }
}

/// One failed command, in submission order — the engine's failure log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// The completion event of the failed command.
    pub event: EventId,
    /// Device the command was bound to.
    pub device: DeviceId,
    /// Logical command-queue id (the same id recorded in the trace).
    pub queue: usize,
    /// Why it failed.
    pub kind: FaultKind,
    /// Virtual instant the failure surfaced (the event's `end`).
    pub at: SimTime,
}

/// A device slowdown active from a given instant.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Degrade {
    device: DeviceId,
    /// Duration multiplier (`2.0` = half throughput). Clamped to ≥ 1.0.
    factor: f64,
    from: SimTime,
}

/// A seeded, deterministic description of every fault the engine will
/// inject. Built once, installed via
/// [`crate::engine::Engine::set_fault_plan`], then consulted on every submit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transfer_failure_rate: f64,
    degraded: Vec<Degrade>,
    losses: Vec<(DeviceId, SimTime)>,
}

impl FaultPlan {
    /// An empty plan (no faults) drawing its transfer coin flips from
    /// `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, transfer_failure_rate: 0.0, degraded: Vec::new(), losses: Vec::new() }
    }

    /// The seed the transfer coin flips derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fail each DMA transfer independently with probability `rate`
    /// (clamped to `[0, 1]`; NaN means 0).
    pub fn with_transfer_failure_rate(mut self, rate: f64) -> FaultPlan {
        self.transfer_failure_rate = if rate.is_nan() { 0.0 } else { rate.clamp(0.0, 1.0) };
        self
    }

    /// The configured per-transfer failure probability.
    pub fn transfer_failure_rate(&self) -> f64 {
        self.transfer_failure_rate
    }

    /// Permanently lose `device` at virtual instant `at`. The earliest
    /// instant wins if the same device is named twice.
    pub fn lose_device(mut self, device: DeviceId, at: SimTime) -> FaultPlan {
        match self.losses.iter_mut().find(|(d, _)| *d == device) {
            Some((_, t)) => *t = (*t).min(at),
            None => self.losses.push((device, at)),
        }
        self
    }

    /// Slow `device` down by `factor` (≥ 1.0; smaller values are clamped)
    /// starting at virtual instant `from`. The largest active factor wins if
    /// a device is degraded more than once.
    pub fn degrade_device(mut self, device: DeviceId, factor: f64, from: SimTime) -> FaultPlan {
        let factor = if factor.is_nan() { 1.0 } else { factor.max(1.0) };
        self.degraded.push(Degrade { device, factor, from });
        self
    }

    /// The instant `device` is scheduled to die, if any.
    pub fn loss_at(&self, device: DeviceId) -> Option<SimTime> {
        self.losses.iter().find(|(d, _)| *d == device).map(|&(_, t)| t)
    }

    /// The duration multiplier active on `device` at instant `t` (1.0 when
    /// healthy).
    pub fn degradation_at(&self, device: DeviceId, t: SimTime) -> f64 {
        self.degraded
            .iter()
            .filter(|g| g.device == device && g.from <= t)
            .map(|g| g.factor)
            .fold(1.0, f64::max)
    }

    /// True when the plan can never inject a fault.
    pub fn is_empty(&self) -> bool {
        self.transfer_failure_rate == 0.0 && self.degraded.is_empty() && self.losses.is_empty()
    }
}

/// Live fault state inside the engine: the plan plus the seeded coin-flip
/// stream for transfer failures.
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) rng: XorShift,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let rng = XorShift::new(plan.seed());
        FaultState { plan, rng }
    }

    /// Deterministic coin flip for one transfer.
    pub(crate) fn transfer_fails(&mut self) -> bool {
        let rate = self.plan.transfer_failure_rate();
        rate > 0.0 && self.rng.f64() < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_clamps_and_merges() {
        let p = FaultPlan::new(7)
            .with_transfer_failure_rate(2.0)
            .degrade_device(DeviceId(0), 0.5, SimTime::ZERO)
            .lose_device(DeviceId(1), SimTime::from_nanos(100))
            .lose_device(DeviceId(1), SimTime::from_nanos(50));
        assert_eq!(p.transfer_failure_rate(), 1.0);
        // Degradation below 1.0 is clamped up (a degrade never speeds up).
        assert_eq!(p.degradation_at(DeviceId(0), SimTime::ZERO), 1.0);
        // Earliest loss instant wins.
        assert_eq!(p.loss_at(DeviceId(1)), Some(SimTime::from_nanos(50)));
        assert_eq!(p.loss_at(DeviceId(0)), None);
    }

    #[test]
    fn degradation_activates_at_its_start_instant() {
        let p = FaultPlan::new(1).degrade_device(DeviceId(2), 3.0, SimTime::from_nanos(10));
        assert_eq!(p.degradation_at(DeviceId(2), SimTime::from_nanos(9)), 1.0);
        assert_eq!(p.degradation_at(DeviceId(2), SimTime::from_nanos(10)), 3.0);
        // Overlapping degradations: the largest active factor wins.
        let p = p.degrade_device(DeviceId(2), 2.0, SimTime::ZERO);
        assert_eq!(p.degradation_at(DeviceId(2), SimTime::from_nanos(5)), 2.0);
        assert_eq!(p.degradation_at(DeviceId(2), SimTime::from_nanos(10)), 3.0);
    }

    #[test]
    fn status_codes_are_negative_and_distinct() {
        let t = FaultKind::TransientTransfer;
        let l = FaultKind::DeviceLost;
        assert!(t.status_code() < 0 && l.status_code() < 0);
        assert_ne!(t.status_code(), l.status_code());
        assert_eq!(CommandStatus::Complete.code(), 0);
        assert!(CommandStatus::Complete.is_ok());
        assert!(!CommandStatus::Failed(t).is_ok());
        assert!(t.is_transient() && !l.is_transient());
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new(3).is_empty());
        assert!(!FaultPlan::new(3).with_transfer_failure_rate(0.1).is_empty());
    }
}

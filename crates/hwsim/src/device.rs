//! Device specifications and the device-side efficiency model.
//!
//! A [`DeviceSpec`] captures the *peak* capabilities of an OpenCL device
//! (compute throughput, memory bandwidth, launch overhead, concurrency). The
//! efficiency model then discounts those peaks according to the qualitative
//! characteristics of a kernel (memory-access coalescing, branch divergence,
//! vectorizability, available parallelism) to produce *sustained* rates.
//!
//! The discount curves encode the architectural folklore the paper leans on:
//!
//! * GPUs lose most of their memory bandwidth on uncoalesced (strided,
//!   column-major) access; CPUs are far less sensitive thanks to caches.
//! * GPUs lose compute throughput to branch divergence (SIMT serialization);
//!   CPUs much less so.
//! * GPUs need tens of thousands of work-items in flight to reach peak; CPUs
//!   saturate with one workgroup per core.
//!
//! These are exactly the effects that make the SNU-NPB benchmarks (naive GPU
//! ports) mostly CPU-friendly while EP (compute-bound, divergence-light,
//! massively parallel) is GPU-friendly — the crux of Figures 3–5.

use crate::time::SimDuration;
use std::fmt;

/// Identifies a device within a [`crate::node::NodeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// The index of the device in the node's device list.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Broad architecture family of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// A multicore CPU exposed as an OpenCL device (e.g. via the AMD APP SDK).
    Cpu,
    /// A discrete GPU (e.g. NVIDIA Tesla C2050).
    Gpu,
    /// A many-core accelerator (e.g. Xeon Phi). Modeled like a GPU with CPU-ish
    /// divergence behaviour; not used by the paper's testbed but supported.
    Accelerator,
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceType::Cpu => write!(f, "CPU"),
            DeviceType::Gpu => write!(f, "GPU"),
            DeviceType::Accelerator => write!(f, "ACC"),
        }
    }
}

/// Static description of one OpenCL device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `"Tesla C2050"`.
    pub name: String,
    /// Architecture family; drives the efficiency model.
    pub device_type: DeviceType,
    /// Number of compute units (CPU cores or GPU SMs).
    pub compute_units: u32,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak double-precision throughput in GFLOP/s.
    pub peak_gflops_dp: f64,
    /// Peak device-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in bytes (kernel arguments must fit).
    pub mem_capacity: u64,
    /// How many workgroups the device executes concurrently at full occupancy.
    pub concurrent_workgroups: u32,
    /// Fixed overhead charged per kernel launch.
    pub launch_overhead: SimDuration,
    /// Work-items *per compute unit* needed to reach ~63% of that unit's
    /// peak (the `k` of a saturating `1 - exp(-n/k)` utilization curve).
    /// GPUs need hundreds of threads per SM to hide latency; a CPU core
    /// saturates with a few dozen items.
    pub saturation_items: f64,
    /// NUMA socket this device is attached to (PCIe root complex for GPUs,
    /// `None` for the CPU device which spans all sockets).
    pub socket: Option<usize>,
}

impl DeviceSpec {
    /// Peak throughput for the precision used by a kernel.
    #[inline]
    pub fn peak_flops(&self, double_precision: bool) -> f64 {
        if double_precision {
            self.peak_gflops_dp * 1e9
        } else {
            self.peak_gflops * 1e9
        }
    }

    /// Sustained compute efficiency in `(0, 1]` of an *engaged compute unit*
    /// for a kernel with the given traits and `items_per_cu` work-items
    /// resident per engaged unit.
    pub fn compute_efficiency(&self, traits: &KernelTraitsView, items_per_cu: f64) -> f64 {
        let util = 1.0 - (-items_per_cu / self.saturation_items.max(1.0)).exp();
        let div = traits.branch_divergence.clamp(0.0, 1.0);
        let vec = traits.vector_friendliness.clamp(0.0, 1.0);
        let arch = match self.device_type {
            // SIMT divergence serializes warps: up to ~8x loss. Vector
            // friendliness matters less (SIMT extracts it implicitly).
            DeviceType::Gpu => (1.0 - 0.875 * div) * (0.70 + 0.30 * vec),
            // CPU: divergence is just a branch predictor problem (mild);
            // scalar code forfeits the SIMD units (up to ~4x loss).
            DeviceType::Cpu => (1.0 - 0.25 * div) * (0.25 + 0.75 * vec),
            DeviceType::Accelerator => (1.0 - 0.5 * div) * (0.40 + 0.60 * vec),
        };
        (util * arch).clamp(1e-4, 1.0)
    }

    /// Sustained memory-bandwidth efficiency in `(0, 1]`.
    pub fn memory_efficiency(&self, traits: &KernelTraitsView) -> f64 {
        let coal = traits.coalescing.clamp(0.0, 1.0);
        let arch = match self.device_type {
            // Uncoalesced GPU access wastes most of each 128-byte
            // transaction; strided double-precision streams can lose an
            // order of magnitude of effective bandwidth on Fermi-class
            // parts. The quadratic term makes half-coalesced access already
            // expensive, which is what sinks naive column-major ports.
            DeviceType::Gpu => 0.03 + 0.97 * coal * coal,
            // CPU caches and prefetchers blunt the penalty.
            DeviceType::Cpu => 0.55 + 0.45 * coal,
            DeviceType::Accelerator => 0.15 + 0.85 * coal * coal,
        };
        arch.clamp(1e-4, 1.0)
    }
}

/// Borrowed view of kernel traits, defined here to avoid a circular import
/// with [`crate::cost`]. See [`crate::cost::KernelTraits`] for semantics.
#[derive(Debug, Clone, Copy)]
pub struct KernelTraitsView {
    /// 1.0 = perfectly coalesced / unit-stride memory access.
    pub coalescing: f64,
    /// 1.0 = every work-item takes a different branch path.
    pub branch_divergence: f64,
    /// 1.0 = straight-line vectorizable arithmetic.
    pub vector_friendliness: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> DeviceSpec {
        DeviceSpec {
            name: "test-gpu".into(),
            device_type: DeviceType::Gpu,
            compute_units: 14,
            peak_gflops: 1030.0,
            peak_gflops_dp: 515.0,
            mem_bandwidth_gbs: 144.0,
            mem_capacity: 3 << 30,
            concurrent_workgroups: 112,
            launch_overhead: SimDuration::from_micros(8),
            saturation_items: 384.0,
            socket: Some(1),
        }
    }

    fn cpu() -> DeviceSpec {
        DeviceSpec {
            name: "test-cpu".into(),
            device_type: DeviceType::Cpu,
            compute_units: 16,
            peak_gflops: 250.0,
            peak_gflops_dp: 125.0,
            mem_bandwidth_gbs: 42.0,
            mem_capacity: 32 << 30,
            concurrent_workgroups: 16,
            launch_overhead: SimDuration::from_micros(3),
            saturation_items: 32.0,
            socket: None,
        }
    }

    fn traits(coal: f64, div: f64, vec: f64) -> KernelTraitsView {
        KernelTraitsView { coalescing: coal, branch_divergence: div, vector_friendliness: vec }
    }

    #[test]
    fn gpu_punishes_uncoalesced_access_harder_than_cpu() {
        let good = traits(1.0, 0.0, 1.0);
        let bad = traits(0.0, 0.0, 1.0);
        let g = gpu();
        let c = cpu();
        let gpu_loss = g.memory_efficiency(&good) / g.memory_efficiency(&bad);
        let cpu_loss = c.memory_efficiency(&good) / c.memory_efficiency(&bad);
        assert!(gpu_loss > 5.0, "GPU coalescing penalty too small: {gpu_loss}");
        assert!(cpu_loss < 2.0, "CPU coalescing penalty too large: {cpu_loss}");
    }

    #[test]
    fn gpu_punishes_divergence_harder_than_cpu() {
        let uniform = traits(1.0, 0.0, 1.0);
        let divergent = traits(1.0, 1.0, 1.0);
        let items = 1e5;
        let g = gpu();
        let c = cpu();
        let gpu_loss =
            g.compute_efficiency(&uniform, items) / g.compute_efficiency(&divergent, items);
        let cpu_loss =
            c.compute_efficiency(&uniform, items) / c.compute_efficiency(&divergent, items);
        assert!(gpu_loss > 3.0);
        assert!(cpu_loss < 1.6);
    }

    #[test]
    fn gpu_compute_unit_needs_many_resident_items() {
        let t = traits(1.0, 0.0, 1.0);
        let g = gpu();
        let narrow = g.compute_efficiency(&t, 32.0);
        let wide = g.compute_efficiency(&t, 4096.0);
        assert!(wide / narrow > 5.0, "narrow={narrow} wide={wide}");
        // A CPU core saturates with a few dozen items.
        let c = cpu();
        let cpu_narrow = c.compute_efficiency(&t, 64.0);
        let cpu_wide = c.compute_efficiency(&t, 4096.0);
        assert!(cpu_wide / cpu_narrow < 1.2);
    }

    #[test]
    fn efficiencies_stay_in_unit_interval() {
        for &coal in &[0.0, 0.5, 1.0] {
            for &div in &[0.0, 0.5, 1.0] {
                for &vec in &[0.0, 0.5, 1.0] {
                    for dev in [gpu(), cpu()] {
                        let t = traits(coal, div, vec);
                        let ce = dev.compute_efficiency(&t, 1e6);
                        let me = dev.memory_efficiency(&t);
                        assert!(ce > 0.0 && ce <= 1.0, "{ce}");
                        assert!(me > 0.0 && me <= 1.0, "{me}");
                    }
                }
            }
        }
    }

    #[test]
    fn traits_outside_unit_interval_are_clamped() {
        let t = traits(7.0, -3.0, 42.0);
        let g = gpu();
        assert!(g.memory_efficiency(&t) <= 1.0);
        assert!(g.compute_efficiency(&t, 1e9) <= 1.0);
    }

    #[test]
    fn peak_flops_selects_precision() {
        let g = gpu();
        assert_eq!(g.peak_flops(false), 1030.0e9);
        assert_eq!(g.peak_flops(true), 515.0e9);
    }
}

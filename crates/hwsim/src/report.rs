//! Schedule analysis over execution traces: per-device utilization and a
//! terminal Gantt chart. Companion tooling to
//! [`Trace::to_chrome_json`](crate::trace::Trace::to_chrome_json) for
//! inspecting what the scheduler actually did.

use crate::device::DeviceId;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use std::collections::BTreeMap;

/// Busy/idle accounting for one device over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceUtilization {
    /// The device.
    pub device: DeviceId,
    /// Total time the device executed commands.
    pub busy: SimDuration,
    /// Commands executed.
    pub commands: usize,
    /// First command start on this device.
    pub first_start: SimTime,
    /// Last command end on this device.
    pub last_end: SimTime,
}

impl DeviceUtilization {
    /// Busy fraction of the `[0, horizon]` window.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }
}

/// Compute per-device utilization from a trace. Devices that executed
/// nothing are absent from the result.
pub fn utilization(trace: &Trace) -> BTreeMap<DeviceId, DeviceUtilization> {
    let mut out: BTreeMap<DeviceId, DeviceUtilization> = BTreeMap::new();
    for r in &trace.records {
        let u = out.entry(r.device).or_insert_with(|| DeviceUtilization {
            device: r.device,
            busy: SimDuration::ZERO,
            commands: 0,
            first_start: r.stamp.start,
            last_end: r.stamp.end,
        });
        u.busy += r.stamp.duration();
        u.commands += 1;
        u.first_start = u.first_start.min(r.stamp.start);
        u.last_end = u.last_end.max(r.stamp.end);
    }
    out
}

/// The end of the last command in the trace (the schedule's horizon).
pub fn horizon(trace: &Trace) -> SimTime {
    trace.records.iter().map(|r| r.stamp.end).max().unwrap_or(SimTime::ZERO)
}

/// Per-device accounting of the two execution engines: compute lane
/// (kernels, markers) vs. copy lane (DMA transfers), and how much of their
/// busy time actually overlapped in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneUtilization {
    /// The device.
    pub device: DeviceId,
    /// Total compute-engine busy time (merged intervals).
    pub compute_busy: SimDuration,
    /// Total copy-engine busy time (merged intervals).
    pub copy_busy: SimDuration,
    /// Time during which *both* engines were busy simultaneously.
    pub overlap: SimDuration,
}

impl LaneUtilization {
    /// Overlap as a fraction of the shorter lane's busy time — 1.0 means
    /// the smaller lane was entirely hidden behind the other, 0.0 means the
    /// lanes ran strictly serialized (or one lane was idle).
    pub fn overlap_fraction(&self) -> f64 {
        let min = self.compute_busy.min(self.copy_busy);
        if min == SimDuration::ZERO {
            return 0.0;
        }
        self.overlap.as_secs_f64() / min.as_secs_f64()
    }
}

/// Merge sorted-by-start `(start, end)` nanosecond intervals in place and
/// return the merged list.
fn merge_intervals(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total intersection of two merged interval lists, in nanoseconds.
fn intersect_total(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Compute [`LaneUtilization`] per device over a slice of trace records
/// (e.g. a single epoch's flush window via
/// [`Trace::records_since`](crate::trace::Trace::records_since)). Devices
/// that executed nothing in the slice are absent from the result.
pub fn lane_utilization_of(
    records: &[crate::trace::TraceRecord],
) -> BTreeMap<DeviceId, LaneUtilization> {
    use crate::engine::CommandKind;
    let mut compute: BTreeMap<DeviceId, Vec<(u64, u64)>> = BTreeMap::new();
    let mut copy: BTreeMap<DeviceId, Vec<(u64, u64)>> = BTreeMap::new();
    for r in records {
        let iv = (r.stamp.start.as_nanos(), r.stamp.end.as_nanos());
        if iv.1 <= iv.0 {
            continue;
        }
        let side = match r.kind {
            CommandKind::Transfer { .. } => &mut copy,
            CommandKind::Kernel { .. } | CommandKind::Marker => &mut compute,
        };
        side.entry(r.device).or_default().push(iv);
    }
    let mut out = BTreeMap::new();
    let devices: std::collections::BTreeSet<DeviceId> =
        compute.keys().chain(copy.keys()).copied().collect();
    for dev in devices {
        let c = merge_intervals(compute.remove(&dev).unwrap_or_default());
        let t = merge_intervals(copy.remove(&dev).unwrap_or_default());
        let sum = |v: &[(u64, u64)]| v.iter().map(|(s, e)| e - s).sum::<u64>();
        out.insert(
            dev,
            LaneUtilization {
                device: dev,
                compute_busy: SimDuration::from_nanos(sum(&c)),
                copy_busy: SimDuration::from_nanos(sum(&t)),
                overlap: SimDuration::from_nanos(intersect_total(&c, &t)),
            },
        );
    }
    out
}

/// Compute [`LaneUtilization`] per device over a whole trace.
pub fn lane_utilization(trace: &Trace) -> BTreeMap<DeviceId, LaneUtilization> {
    lane_utilization_of(&trace.records)
}

/// Render an ASCII Gantt chart of the trace: one row per device, `width`
/// columns spanning `[0, horizon]`. Each cell shows `#` when the device was
/// busy for most of that slot, `+` when partially busy, `.` when idle.
pub fn ascii_gantt(trace: &Trace, width: usize) -> String {
    let width = width.max(10);
    let end = horizon(trace);
    if end == SimTime::ZERO {
        return String::from("(empty trace)\n");
    }
    let slot_ns = (end.as_nanos() as f64 / width as f64).max(1.0);
    let devices: Vec<DeviceId> = utilization(trace).into_keys().collect();
    let mut out = String::new();
    for dev in devices {
        // Busy nanoseconds per slot.
        let mut busy = vec![0.0f64; width];
        for r in trace.records.iter().filter(|r| r.device == dev) {
            let (s, e) = (r.stamp.start.as_nanos() as f64, r.stamp.end.as_nanos() as f64);
            let first = (s / slot_ns) as usize;
            let last = ((e / slot_ns) as usize).min(width - 1);
            for (slot, b) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = slot as f64 * slot_ns;
                let hi = lo + slot_ns;
                *b += (e.min(hi) - s.max(lo)).max(0.0);
            }
        }
        out.push_str(&format!("{dev:>4} |"));
        for b in busy {
            let frac = b / slot_ns;
            out.push(if frac > 0.5 {
                '#'
            } else if frac > 0.01 {
                '+'
            } else {
                '.'
            });
        }
        out.push_str("|\n");
    }
    out.push_str(&format!("      0 {:>width$}\n", format!("{end}"), width = width - 2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CommandDesc, CommandKind, Engine};

    fn engine_with_work() -> Engine {
        let mut e = Engine::new(2);
        for i in 0..4 {
            e.submit(CommandDesc {
                device: DeviceId(i % 2),
                kind: CommandKind::Marker,
                duration: SimDuration::from_millis(10),
                waits: crate::waitlist::WaitList::new(),
                queue: 0,
            });
        }
        e.finish_all();
        e
    }

    #[test]
    fn utilization_accounts_busy_time_and_commands() {
        let e = engine_with_work();
        let u = utilization(e.trace());
        assert_eq!(u.len(), 2);
        for du in u.values() {
            assert_eq!(du.commands, 2);
            assert_eq!(du.busy, SimDuration::from_millis(20));
        }
        let h = horizon(e.trace());
        assert!(h >= SimTime::from_nanos(20_000_000));
        // Both devices ran 20ms of a ~20ms horizon: utilization ≈ 1.
        let frac = u[&DeviceId(0)].utilization(h);
        assert!(frac > 0.9 && frac <= 1.0, "{frac}");
    }

    #[test]
    fn gantt_renders_one_row_per_device() {
        let e = engine_with_work();
        let g = ascii_gantt(e.trace(), 40);
        let rows: Vec<&str> = g.lines().collect();
        assert_eq!(rows.len(), 3, "{g}");
        assert!(rows[0].contains('#'));
        assert!(rows[1].contains('#'));
    }

    #[test]
    fn empty_trace_is_handled() {
        let t = Trace::default();
        assert!(utilization(&t).is_empty());
        assert_eq!(horizon(&t), SimTime::ZERO);
        assert_eq!(ascii_gantt(&t, 40), "(empty trace)\n");
    }

    #[test]
    fn utilization_with_idle_gaps_counts_busy_time_only() {
        use crate::time::SimTime;
        use crate::trace::TraceRecord;
        use std::sync::Arc;
        // Two 10ms commands separated by an 80ms gap: busy = 20ms over a
        // 100ms span.
        let mut t = Trace::default();
        for start_ms in [0u64, 90] {
            let start = SimTime::ZERO + SimDuration::from_millis(start_ms);
            let end = start + SimDuration::from_millis(10);
            t.push(TraceRecord {
                device: DeviceId(0),
                queue: 0,
                kind: CommandKind::Kernel { name: Arc::from("k") },
                stamp: crate::engine::EventStamp { queued: start, submit: start, start, end },
                tag: None,
            });
        }
        let u = utilization(&t);
        let du = &u[&DeviceId(0)];
        assert_eq!(du.busy, SimDuration::from_millis(20));
        assert_eq!(du.commands, 2);
        assert_eq!(du.first_start, SimTime::ZERO);
        assert_eq!(du.last_end, SimTime::ZERO + SimDuration::from_millis(100));
        let h = horizon(&t);
        assert_eq!(h, SimTime::ZERO + SimDuration::from_millis(100));
        let frac = du.utilization(h);
        assert!((frac - 0.2).abs() < 1e-9, "{frac}");
        // The gap renders as idle cells between two busy runs.
        let g = ascii_gantt(&t, 50);
        let row = g.lines().next().unwrap();
        assert!(row.contains('#') && row.contains('.'), "{g}");
    }

    #[test]
    fn horizon_of_empty_trace_is_zero_and_utilization_is_zero() {
        let t = Trace::default();
        assert_eq!(horizon(&t), SimTime::ZERO);
        // A degenerate utilization query over a zero horizon must not
        // divide by zero.
        let du = DeviceUtilization {
            device: DeviceId(0),
            busy: SimDuration::ZERO,
            commands: 0,
            first_start: SimTime::ZERO,
            last_end: SimTime::ZERO,
        };
        assert_eq!(du.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn gantt_rendering_is_stable_across_widths() {
        let e = engine_with_work();
        for width in [1usize, 10, 40, 200] {
            let g = ascii_gantt(e.trace(), width);
            let rows: Vec<&str> = g.lines().collect();
            assert_eq!(rows.len(), 3, "width {width}: {g}");
            // Width clamps to ≥10 cells; every device row has exactly the
            // same cell count.
            let cells = |row: &str| row.chars().filter(|c| "#+.".contains(*c)).count();
            assert_eq!(cells(rows[0]), width.max(10), "width {width}");
            assert_eq!(cells(rows[0]), cells(rows[1]));
        }
        // Deterministic: same trace, same chart.
        assert_eq!(ascii_gantt(e.trace(), 40), ascii_gantt(e.trace(), 40));
    }

    #[test]
    fn lane_utilization_measures_transfer_compute_overlap() {
        use crate::topology::TransferKind;
        // A 10ms kernel and a 10ms transfer submitted back to back on one
        // device: the lanes overlap almost entirely (the transfer starts one
        // enqueue cost after the kernel).
        let mut e = Engine::new(1);
        e.submit(CommandDesc {
            device: DeviceId(0),
            kind: CommandKind::Kernel { name: std::sync::Arc::from("k") },
            duration: SimDuration::from_millis(10),
            waits: crate::waitlist::WaitList::new(),
            queue: 0,
        });
        e.submit(CommandDesc {
            device: DeviceId(0),
            kind: CommandKind::Transfer { kind: TransferKind::HostToDevice, bytes: 1024 },
            duration: SimDuration::from_millis(10),
            waits: crate::waitlist::WaitList::new(),
            queue: 0,
        });
        e.finish_all();
        let lanes = lane_utilization(e.trace());
        let l = &lanes[&DeviceId(0)];
        assert_eq!(l.compute_busy, SimDuration::from_millis(10));
        assert_eq!(l.copy_busy, SimDuration::from_millis(10));
        assert!(l.overlap > SimDuration::from_millis(9), "{l:?}");
        assert!(l.overlap_fraction() > 0.9, "{}", l.overlap_fraction());
        // Engine lane accounting agrees with the trace-derived totals.
        let (cb, tb) = e.device_lane_busy(DeviceId(0));
        assert_eq!((cb, tb), (l.compute_busy, l.copy_busy));
    }

    #[test]
    fn lane_utilization_is_zero_when_lanes_serialize() {
        use crate::topology::TransferKind;
        // An explicit wait orders the transfer after the kernel: no overlap.
        let mut e = Engine::new(1);
        let k = e.submit(CommandDesc {
            device: DeviceId(0),
            kind: CommandKind::Kernel { name: std::sync::Arc::from("k") },
            duration: SimDuration::from_millis(10),
            waits: crate::waitlist::WaitList::new(),
            queue: 0,
        });
        e.submit(CommandDesc {
            device: DeviceId(0),
            kind: CommandKind::Transfer { kind: TransferKind::DeviceToHost, bytes: 64 },
            duration: SimDuration::from_millis(5),
            waits: crate::waitlist::WaitList::one(k),
            queue: 0,
        });
        let lanes = lane_utilization(e.trace());
        let l = &lanes[&DeviceId(0)];
        assert_eq!(l.overlap, SimDuration::ZERO);
        assert_eq!(l.overlap_fraction(), 0.0);
        // A device with only one active lane reports fraction 0, not NaN.
        assert!(lane_utilization(&Trace::default()).is_empty());
    }

    #[test]
    fn idle_device_shows_dots() {
        let mut e = Engine::new(2);
        // Device 0 busy early; device 1 busy late (after waiting).
        let a = e.submit(CommandDesc {
            device: DeviceId(0),
            kind: CommandKind::Marker,
            duration: SimDuration::from_millis(10),
            waits: crate::waitlist::WaitList::new(),
            queue: 0,
        });
        e.submit(CommandDesc {
            device: DeviceId(1),
            kind: CommandKind::Marker,
            duration: SimDuration::from_millis(10),
            waits: crate::waitlist::WaitList::one(a),
            queue: 0,
        });
        let g = ascii_gantt(e.trace(), 20);
        let rows: Vec<&str> = g.lines().collect();
        // Device 0's row starts busy and ends idle; device 1 the reverse.
        assert!(rows[0].trim_start().starts_with("D0 |#"));
        assert!(rows[0].contains('.'));
        assert!(rows[1].trim_start().starts_with("D1 |."));
    }
}

//! Device micro-benchmarks (SHOC-style), run *inside* the simulator.
//!
//! MultiCL's device profiler (paper §V-A) runs data-bandwidth and
//! instruction-throughput benchmarks once per node configuration and caches
//! the results. Our versions submit real commands to an [`Engine`] and read
//! back the event timestamps — i.e. they *measure* the simulated node the
//! same way SHOC measures a physical one, for data sizes ranging from
//! latency-bound to bandwidth-bound.

use crate::cost::{KernelCostSpec, NdRangeShape};
use crate::device::DeviceId;
use crate::engine::{CommandDesc, CommandKind, Engine};
use crate::json::Json;
use crate::node::NodeConfig;
use crate::time::SimDuration;
use crate::topology::TransferKind;
use std::sync::Arc;

/// Transfer sizes swept by the bandwidth benchmarks: 1 KiB (latency-bound)
/// through 256 MiB (bandwidth-bound), in powers of four.
pub const BANDWIDTH_SIZES: [u64; 10] =
    [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28];

/// One measured (size → effective GB/s) curve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BandwidthCurve {
    /// Transfer sizes in bytes, ascending.
    pub sizes: Vec<u64>,
    /// Effective bandwidth at each size, GB/s.
    pub gbs: Vec<f64>,
}

impl BandwidthCurve {
    /// Encode as a JSON object `{"sizes":[...],"gbs":[...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sizes", Json::num_arr(self.sizes.iter().map(|&s| s as f64))),
            ("gbs", Json::num_arr(self.gbs.iter().copied())),
        ])
    }

    /// Decode from the [`Self::to_json`] representation.
    pub fn from_json(value: &Json) -> Option<BandwidthCurve> {
        let sizes =
            value.get("sizes")?.as_arr()?.iter().map(Json::as_u64).collect::<Option<Vec<u64>>>()?;
        let gbs =
            value.get("gbs")?.as_arr()?.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>()?;
        (sizes.len() == gbs.len()).then_some(BandwidthCurve { sizes, gbs })
    }

    /// Effective bandwidth for an arbitrary size by piecewise-linear
    /// interpolation in log2(size) (paper: "bandwidth numbers for unknown
    /// data sizes are computed by using simple interpolation techniques").
    /// Sizes outside the measured range clamp to the nearest endpoint.
    pub fn interpolate_gbs(&self, bytes: u64) -> f64 {
        assert!(!self.sizes.is_empty(), "empty bandwidth curve");
        let x = (bytes.max(1) as f64).log2();
        let xs: Vec<f64> = self.sizes.iter().map(|&s| (s as f64).log2()).collect();
        if x <= xs[0] {
            return self.gbs[0];
        }
        if x >= *xs.last().unwrap() {
            return *self.gbs.last().unwrap();
        }
        let hi = xs.partition_point(|&v| v < x);
        let lo = hi - 1;
        let t = (x - xs[lo]) / (xs[hi] - xs[lo]);
        self.gbs[lo] + t * (self.gbs[hi] - self.gbs[lo])
    }

    /// Predicted transfer time for `bytes` using the interpolated bandwidth.
    pub fn predict_time(&self, bytes: u64) -> SimDuration {
        let gbs = self.interpolate_gbs(bytes);
        if gbs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / (gbs * 1e9))
    }
}

/// Measure the host↔device bandwidth curve for `dev` by timing transfers.
///
/// The engine's clock advances; callers normally use a scratch engine.
pub fn measure_host_bandwidth(
    engine: &mut Engine,
    node: &NodeConfig,
    dev: DeviceId,
) -> BandwidthCurve {
    let mut curve = BandwidthCurve::default();
    for &bytes in &BANDWIDTH_SIZES {
        let duration = node.topology.host_transfer_time(dev, bytes, &node.devices);
        let ev = engine.submit(CommandDesc {
            device: dev,
            kind: CommandKind::Transfer { kind: TransferKind::HostToDevice, bytes },
            duration,
            waits: crate::waitlist::WaitList::new(),
            queue: usize::MAX,
        });
        engine.wait(ev);
        let measured = engine.stamp(ev).duration();
        curve.sizes.push(bytes);
        curve.gbs.push(bytes as f64 / measured.as_secs_f64().max(1e-12) / 1e9);
    }
    curve
}

/// Measure the device→device bandwidth curve for the pair `(src, dst)`.
pub fn measure_d2d_bandwidth(
    engine: &mut Engine,
    node: &NodeConfig,
    src: DeviceId,
    dst: DeviceId,
) -> BandwidthCurve {
    let mut curve = BandwidthCurve::default();
    for &bytes in &BANDWIDTH_SIZES {
        let duration = node.topology.device_transfer_time(src, dst, bytes, &node.devices);
        let ev = engine.submit(CommandDesc {
            device: dst,
            kind: CommandKind::Transfer { kind: TransferKind::DeviceToDevice, bytes },
            duration,
            waits: crate::waitlist::WaitList::new(),
            queue: usize::MAX,
        });
        engine.wait(ev);
        let measured = engine.stamp(ev).duration();
        curve.sizes.push(bytes);
        curve.gbs.push(bytes as f64 / measured.as_secs_f64().max(1e-12) / 1e9);
    }
    curve
}

/// Measure sustained instruction throughput (GFLOP/s) of `dev` with a
/// MaxFlops-style synthetic kernel: wide, coalesced, divergence-free FMA
/// chains.
pub fn measure_instruction_throughput(
    engine: &mut Engine,
    node: &NodeConfig,
    dev: DeviceId,
    double_precision: bool,
) -> f64 {
    let mut traits = crate::cost::KernelTraits::IDEAL;
    traits.double_precision = double_precision;
    let spec = KernelCostSpec { flops_per_item: 4096.0, bytes_per_item: 4.0, traits };
    let nd = NdRangeShape::new(1 << 22, 256);
    let duration = spec.kernel_time(node.spec(dev), nd);
    let ev = engine.submit(CommandDesc {
        device: dev,
        kind: CommandKind::Kernel { name: Arc::from("shoc_maxflops") },
        duration,
        waits: crate::waitlist::WaitList::new(),
        queue: usize::MAX,
    });
    engine.wait(ev);
    let t = engine.stamp(ev).duration().as_secs_f64().max(1e-12);
    spec.total_flops(nd) / t / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Engine, NodeConfig) {
        let node = NodeConfig::paper_node();
        let engine = Engine::new(node.device_count());
        (engine, node)
    }

    #[test]
    fn host_bandwidth_curve_rises_with_size() {
        let (mut e, node) = setup();
        let gpu = node.gpus()[0];
        let curve = measure_host_bandwidth(&mut e, &node, gpu);
        assert_eq!(curve.sizes.len(), BANDWIDTH_SIZES.len());
        assert!(curve.gbs.first().unwrap() < curve.gbs.last().unwrap());
        // Large transfers should approach but not exceed the link peak
        // (PCIe gen2, derated for the cross-socket hop: 6 * 0.75 = 4.5 GB/s).
        let peak = *curve.gbs.last().unwrap();
        assert!(peak > 3.5 && peak <= 4.5 + 1e-9, "peak={peak}");
    }

    #[test]
    fn interpolation_brackets_measured_points() {
        let (mut e, node) = setup();
        let gpu = node.gpus()[0];
        let curve = measure_host_bandwidth(&mut e, &node, gpu);
        // Exactly at a measured size: must match the measurement.
        let idx = 4;
        let at = curve.interpolate_gbs(curve.sizes[idx]);
        assert!((at - curve.gbs[idx]).abs() < 1e-9);
        // Between two sizes: must lie between the two measurements.
        let mid = (curve.sizes[4] + curve.sizes[5]) / 2;
        let v = curve.interpolate_gbs(mid);
        let (lo, hi) = (curve.gbs[4].min(curve.gbs[5]), curve.gbs[4].max(curve.gbs[5]));
        assert!(v >= lo && v <= hi, "{lo} <= {v} <= {hi}");
    }

    #[test]
    fn interpolation_clamps_out_of_range() {
        let curve = BandwidthCurve { sizes: vec![1024, 4096], gbs: vec![1.0, 4.0] };
        assert_eq!(curve.interpolate_gbs(1), 1.0);
        assert_eq!(curve.interpolate_gbs(1 << 30), 4.0);
    }

    #[test]
    fn d2d_is_slower_than_h2d() {
        let (mut e, node) = setup();
        let (g0, g1) = (node.gpus()[0], node.gpus()[1]);
        let h2d = measure_host_bandwidth(&mut e, &node, g0);
        let d2d = measure_d2d_bandwidth(&mut e, &node, g0, g1);
        // Staging through the host halves the effective bandwidth.
        assert!(d2d.gbs.last().unwrap() < h2d.gbs.last().unwrap());
    }

    #[test]
    fn gpu_instruction_throughput_beats_cpu() {
        let (mut e, node) = setup();
        let cpu = node.cpu().unwrap();
        let gpu = node.gpus()[0];
        let tc = measure_instruction_throughput(&mut e, &node, cpu, false);
        let tg = measure_instruction_throughput(&mut e, &node, gpu, false);
        assert!(tg > tc, "gpu={tg} cpu={tc}");
        // Sanity: measured throughput cannot exceed the spec peak.
        assert!(tg <= node.spec(gpu).peak_gflops + 1e-6);
    }

    #[test]
    fn predict_time_roundtrips_measured_bandwidth() {
        let (mut e, node) = setup();
        let gpu = node.gpus()[0];
        let curve = measure_host_bandwidth(&mut e, &node, gpu);
        let bytes = 1 << 24;
        let predicted = curve.predict_time(bytes);
        let actual = node.topology.host_transfer_time(gpu, bytes, &node.devices);
        let err = (predicted.as_secs_f64() - actual.as_secs_f64()).abs() / actual.as_secs_f64();
        assert!(err < 0.05, "prediction error {err}");
    }
}

//! Small numeric helpers used by the experiment harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean; 0.0 for an empty slice. Non-positive entries are skipped
/// (they would make the geomean undefined); if all entries are non-positive
/// the result is 0.0. The paper reports its overall overhead as a geometric
/// mean across benchmarks.
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

/// Normalize each element by `base` (percent). Returns 0.0 entries when
/// `base` is zero.
pub fn normalize_pct(xs: &[f64], base: f64) -> Vec<f64> {
    xs.iter().map(|x| if base > 0.0 { 100.0 * x / base } else { 0.0 }).collect()
}

/// Relative overhead `(observed - ideal) / ideal * 100`, the paper's
/// profiling-overhead metric (§VI-B1). Returns 0.0 when `ideal` is zero.
pub fn overhead_pct(observed: f64, ideal: f64) -> f64 {
    if ideal <= 0.0 {
        0.0
    } else {
        (observed - ideal) / ideal * 100.0
    }
}

/// The `p`-th percentile (`p` in `[0, 100]`) of `xs` with linear
/// interpolation between closest ranks; 0.0 for an empty slice. The input
/// does not need to be sorted (a sorted copy is made internally). Used by
/// the serving layer for p50/p95/p99 job-latency reporting.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The standard service-latency triple `(p50, p95, p99)` of `xs`.
pub fn latency_percentiles(xs: &[f64]) -> (f64, f64, f64) {
    (percentile(xs, 50.0), percentile(xs, 95.0), percentile(xs, 99.0))
}

/// Index of the minimum element (first on ties); `None` when empty or when
/// any element is NaN.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    if xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN filtered above"))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_skips_nonpositive() {
        assert_eq!(geomean(&[0.0, -5.0]), 0.0);
        let g = geomean(&[0.0, 4.0, 9.0]);
        assert!((g - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_pct_basic() {
        assert!((overhead_pct(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(overhead_pct(110.0, 0.0), 0.0);
    }

    #[test]
    fn argmin_finds_first_minimum() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmin(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
        // Unsorted input gives the same answer.
        let shuffled = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&shuffled, 50.0), percentile(&xs, 50.0));
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // Out-of-range p clamps rather than panicking.
        assert_eq!(percentile(&[1.0, 2.0], 150.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], -5.0), 1.0);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (p50, p95, p99) = latency_percentiles(&xs);
        assert!(p50 <= p95 && p95 <= p99);
        assert!((p50 - 50.5).abs() < 1.0);
        assert!(p99 > 98.0);
    }

    #[test]
    fn normalize_pct_handles_zero_base() {
        assert_eq!(normalize_pct(&[1.0, 2.0], 0.0), vec![0.0, 0.0]);
        assert_eq!(normalize_pct(&[1.0, 2.0], 2.0), vec![50.0, 100.0]);
    }
}

//! A small-vector wait list for command dependencies.
//!
//! Nearly every command waits on zero, one, or two events (the in-order
//! chain predecessor plus maybe one explicit wait), so allocating a fresh
//! `Vec<EventId>` per enqueue is pure churn on the hot path. [`WaitList`]
//! stores up to [`WaitList::INLINE`] ids inline and only touches the heap
//! when a wait list genuinely spills (out-of-order queues with long explicit
//! lists, barriers draining many outstanding events). `clear` keeps any
//! spilled allocation so a scratch list can be reused across enqueues.

use crate::engine::EventId;

/// Inline-capacity list of [`EventId`]s (see module docs).
#[derive(Clone)]
pub struct WaitList(Repr);

#[derive(Clone)]
enum Repr {
    Inline { buf: [EventId; WaitList::INLINE], len: u8 },
    Heap(Vec<EventId>),
}

impl WaitList {
    /// Ids stored without a heap allocation.
    pub const INLINE: usize = 4;

    /// An empty list (no allocation).
    #[inline]
    pub const fn new() -> WaitList {
        WaitList(Repr::Inline { buf: [EventId(0); WaitList::INLINE], len: 0 })
    }

    /// A single-element list (no allocation).
    #[inline]
    pub fn one(ev: EventId) -> WaitList {
        let mut w = WaitList::new();
        w.push(ev);
        w
    }

    /// Append an id, spilling to the heap past [`Self::INLINE`] elements.
    pub fn push(&mut self, ev: EventId) {
        match &mut self.0 {
            Repr::Inline { buf, len } => {
                let n = *len as usize;
                if n < WaitList::INLINE {
                    buf[n] = ev;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(WaitList::INLINE * 2);
                    v.extend_from_slice(&buf[..n]);
                    v.push(ev);
                    self.0 = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(ev),
        }
    }

    /// The ids as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[EventId] {
        match &self.0 {
            Repr::Inline { buf, len } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Number of ids.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True when no ids are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all ids. A spilled heap allocation is kept for reuse, so a
    /// scratch `WaitList` amortizes to zero allocations per enqueue.
    #[inline]
    pub fn clear(&mut self) {
        match &mut self.0 {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Whether the list has spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.0, Repr::Heap(_))
    }
}

impl Default for WaitList {
    fn default() -> WaitList {
        WaitList::new()
    }
}

impl std::fmt::Debug for WaitList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl std::ops::Deref for WaitList {
    type Target = [EventId];
    #[inline]
    fn deref(&self) -> &[EventId] {
        self.as_slice()
    }
}

impl From<Vec<EventId>> for WaitList {
    fn from(v: Vec<EventId>) -> WaitList {
        WaitList(Repr::Heap(v))
    }
}

impl From<&[EventId]> for WaitList {
    fn from(s: &[EventId]) -> WaitList {
        let mut w = WaitList::new();
        for &ev in s {
            w.push(ev);
        }
        w
    }
}

impl FromIterator<EventId> for WaitList {
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> WaitList {
        let mut w = WaitList::new();
        for ev in iter {
            w.push(ev);
        }
        w
    }
}

impl Extend<EventId> for WaitList {
    fn extend<T: IntoIterator<Item = EventId>>(&mut self, iter: T) {
        for ev in iter {
            self.push(ev);
        }
    }
}

impl<'a> IntoIterator for &'a WaitList {
    type Item = &'a EventId;
    type IntoIter = std::slice::Iter<'a, EventId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut w = WaitList::new();
        assert!(w.is_empty());
        for i in 0..WaitList::INLINE {
            w.push(EventId(i));
            assert!(!w.spilled());
        }
        assert_eq!(w.len(), WaitList::INLINE);
        assert_eq!(w.as_slice(), (0..WaitList::INLINE).map(EventId).collect::<Vec<_>>());
    }

    #[test]
    fn spills_past_capacity_and_preserves_order() {
        let mut w = WaitList::new();
        for i in 0..10 {
            w.push(EventId(i));
        }
        assert!(w.spilled());
        assert_eq!(w.as_slice(), (0..10).map(EventId).collect::<Vec<_>>());
    }

    #[test]
    fn clear_keeps_heap_allocation_for_reuse() {
        let mut w: WaitList = (0..10).map(EventId).collect();
        assert!(w.spilled());
        w.clear();
        assert!(w.is_empty());
        // Still heap-backed: subsequent pushes reuse the allocation.
        assert!(w.spilled());
        w.push(EventId(7));
        assert_eq!(w.as_slice(), [EventId(7)]);
    }

    #[test]
    fn one_and_from_and_iter() {
        let w = WaitList::one(EventId(3));
        assert_eq!(w.as_slice(), [EventId(3)]);
        let w2 = WaitList::from(vec![EventId(1), EventId(2)]);
        assert_eq!(w2.iter().copied().collect::<Vec<_>>(), vec![EventId(1), EventId(2)]);
        let w3 = WaitList::from(&[EventId(9)][..]);
        assert_eq!(w3.len(), 1);
    }

    #[test]
    fn debug_formats_like_a_slice() {
        let w = WaitList::one(EventId(5));
        assert_eq!(format!("{w:?}"), "[EventId(5)]");
    }
}

//! The roofline kernel cost model.
//!
//! A kernel is described by its per-work-item arithmetic and memory traffic
//! plus three qualitative traits ([`KernelTraits`]). Given a device and an
//! NDRange, the model produces the kernel's execution time as
//!
//! ```text
//! time = waves * max(compute_time_per_wave, memory_time_per_wave) + launch_overhead
//! ```
//!
//! where a *wave* is one batch of `concurrent_workgroups` workgroups executing
//! together. This wave structure is what makes **minikernel profiling**
//! (paper §V-C2) work: running only workgroup 0 with the original launch
//! configuration costs exactly one workgroup on one compute unit — a constant
//! independent of the problem size — while remaining proportional to the
//! full kernel's per-item costs, so *relative* device rankings are preserved.

use crate::device::{DeviceSpec, KernelTraitsView};
use crate::time::SimDuration;

/// Qualitative execution characteristics of a kernel, all in `[0, 1]`.
///
/// These play the role of the architectural knowledge MultiCL's kernel
/// profiler extracts by *measurement* on real hardware; here they parameterize
/// the simulator so that measurement recovers the same relative behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTraits {
    /// Fraction of global-memory accesses that are coalesced / unit-stride.
    /// Column-major (Fortran-order) ports score low; row-major ports high.
    pub coalescing: f64,
    /// Degree of branch divergence between adjacent work-items.
    pub branch_divergence: f64,
    /// How amenable the inner arithmetic is to SIMD vectorization.
    pub vector_friendliness: f64,
    /// Whether the kernel computes in double precision.
    pub double_precision: bool,
}

impl KernelTraits {
    /// A well-behaved data-parallel kernel: coalesced, uniform, vectorizable.
    pub const IDEAL: KernelTraits = KernelTraits {
        coalescing: 1.0,
        branch_divergence: 0.0,
        vector_friendliness: 1.0,
        double_precision: false,
    };

    /// Borrowed view used by the device efficiency model.
    #[inline]
    pub(crate) fn view(&self) -> KernelTraitsView {
        KernelTraitsView {
            coalescing: self.coalescing,
            branch_divergence: self.branch_divergence,
            vector_friendliness: self.vector_friendliness,
        }
    }
}

impl Default for KernelTraits {
    fn default() -> Self {
        KernelTraits::IDEAL
    }
}

/// Launch geometry of a kernel: total work-items and workgroup size, flattened
/// to 1-D (OpenCL NDRanges of any dimensionality flatten losslessly for cost
/// purposes because the model is per-item).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdRangeShape {
    /// Total number of work-items across all dimensions.
    pub global_items: u64,
    /// Work-items per workgroup.
    pub local_items: u64,
}

impl NdRangeShape {
    /// Build a shape, clamping degenerate inputs to at least one item.
    pub fn new(global_items: u64, local_items: u64) -> Self {
        let local = local_items.max(1);
        let global = global_items.max(1);
        NdRangeShape { global_items: global, local_items: local }
    }

    /// Number of workgroups (rounded up).
    #[inline]
    pub fn workgroups(&self) -> u64 {
        self.global_items.div_ceil(self.local_items)
    }
}

/// Quantitative cost description of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCostSpec {
    /// Floating-point operations performed per work-item.
    pub flops_per_item: f64,
    /// Bytes of global-memory traffic per work-item.
    pub bytes_per_item: f64,
    /// Qualitative traits.
    pub traits: KernelTraits,
}

impl KernelCostSpec {
    /// A compute-bound spec with the given flops/item and light memory use.
    pub fn compute_bound(flops_per_item: f64) -> Self {
        KernelCostSpec { flops_per_item, bytes_per_item: 8.0, traits: KernelTraits::IDEAL }
    }

    /// A memory-bound spec with the given bytes/item and light arithmetic.
    pub fn memory_bound(bytes_per_item: f64) -> Self {
        KernelCostSpec { flops_per_item: 2.0, bytes_per_item, traits: KernelTraits::IDEAL }
    }

    /// Builder-style trait override.
    pub fn with_traits(mut self, traits: KernelTraits) -> Self {
        self.traits = traits;
        self
    }

    /// Execution time of the full kernel on `device` with launch shape `nd`.
    pub fn kernel_time(&self, device: &DeviceSpec, nd: NdRangeShape) -> SimDuration {
        let workgroups = nd.workgroups();
        let conc = u64::from(device.concurrent_workgroups.max(1));
        let waves = workgroups.div_ceil(conc);
        // Items processed per full wave (the last partial wave is charged as
        // a full one — tail effects are real on both CPUs and GPUs).
        let items_per_wave = (conc.min(workgroups) * nd.local_items) as f64;
        let wave = self.wave_time(device, nd, items_per_wave, conc.min(workgroups));
        device.launch_overhead + wave * waves
    }

    /// Execution time of the *minikernel* (paper §V-C2): same launch shape,
    /// but only workgroup 0 does work. One workgroup occupies one compute
    /// unit; all other workgroups return immediately (their cost is folded
    /// into the launch overhead).
    pub fn minikernel_time(&self, device: &DeviceSpec, nd: NdRangeShape) -> SimDuration {
        let items = nd.local_items as f64;
        // One workgroup executing alone: utilization is whatever one
        // workgroup's items can sustain on a single compute unit.
        let wave = self.wave_time(device, nd, items, 1);
        device.launch_overhead + wave
    }

    /// Time for one wave of `wgs` workgroups covering `items` work-items.
    ///
    /// A wave engages `ceil(wgs / wgs_per_cu)` compute units (capped at the
    /// device total); per-unit utilization follows the saturating curve on
    /// the items resident per engaged unit. Splitting parallelism this way —
    /// *width* (engaged units) times *depth* (per-unit occupancy) — is what
    /// lets the minikernel (one workgroup, one unit) remain a faithful probe
    /// of relative device speed.
    fn wave_time(
        &self,
        device: &DeviceSpec,
        nd: NdRangeShape,
        items: f64,
        wgs: u64,
    ) -> SimDuration {
        let traits = self.traits.view();
        let total_cus = u64::from(device.compute_units.max(1));
        let wgs_per_cu = (u64::from(device.concurrent_workgroups.max(1)) / total_cus).max(1);
        let engaged = wgs.div_ceil(wgs_per_cu).clamp(1, total_cus);
        let items_per_cu = items / engaged as f64;
        let ce = device.compute_efficiency(&traits, items_per_cu);
        let me = device.memory_efficiency(&traits);
        let cu_fraction = engaged as f64 / total_cus as f64;
        let flops = self.flops_per_item * items;
        let bytes = self.bytes_per_item * items;
        let compute_rate = device.peak_flops(self.traits.double_precision) * ce * cu_fraction;
        // Memory bandwidth is a shared resource but a single compute unit
        // cannot saturate it either; scale by the same engaged fraction,
        // floored so one unit still sees a usable slice of the bus.
        let mem_fraction = cu_fraction.max(1.0 / total_cus as f64);
        let mem_rate = device.mem_bandwidth_gbs * 1e9 * me * mem_fraction;
        let t_compute = if flops > 0.0 { flops / compute_rate.max(1.0) } else { 0.0 };
        let t_memory = if bytes > 0.0 { bytes / mem_rate.max(1.0) } else { 0.0 };
        let _ = nd;
        SimDuration::from_secs_f64(t_compute.max(t_memory))
    }

    /// Total global-memory traffic of the kernel in bytes.
    #[inline]
    pub fn total_bytes(&self, nd: NdRangeShape) -> u64 {
        (self.bytes_per_item * nd.global_items as f64).round() as u64
    }

    /// Total floating-point work of the kernel.
    #[inline]
    pub fn total_flops(&self, nd: NdRangeShape) -> f64 {
        self.flops_per_item * nd.global_items as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceType;

    fn gpu() -> DeviceSpec {
        DeviceSpec {
            name: "g".into(),
            device_type: DeviceType::Gpu,
            compute_units: 14,
            peak_gflops: 1030.0,
            peak_gflops_dp: 515.0,
            mem_bandwidth_gbs: 144.0,
            mem_capacity: 3 << 30,
            concurrent_workgroups: 112,
            launch_overhead: SimDuration::from_micros(8),
            saturation_items: 384.0,
            socket: Some(1),
        }
    }

    fn cpu() -> DeviceSpec {
        DeviceSpec {
            name: "c".into(),
            device_type: DeviceType::Cpu,
            compute_units: 16,
            peak_gflops: 250.0,
            peak_gflops_dp: 125.0,
            mem_bandwidth_gbs: 42.0,
            mem_capacity: 32 << 30,
            concurrent_workgroups: 16,
            launch_overhead: SimDuration::from_micros(3),
            saturation_items: 32.0,
            socket: None,
        }
    }

    #[test]
    fn ndrange_workgroup_count_rounds_up() {
        assert_eq!(NdRangeShape::new(100, 32).workgroups(), 4);
        assert_eq!(NdRangeShape::new(128, 32).workgroups(), 4);
        assert_eq!(NdRangeShape::new(1, 64).workgroups(), 1);
    }

    #[test]
    fn degenerate_ndrange_is_clamped() {
        let nd = NdRangeShape::new(0, 0);
        assert_eq!(nd.global_items, 1);
        assert_eq!(nd.local_items, 1);
        assert_eq!(nd.workgroups(), 1);
    }

    #[test]
    fn compute_bound_ideal_kernel_prefers_gpu() {
        let spec = KernelCostSpec::compute_bound(5_000.0);
        let nd = NdRangeShape::new(1 << 20, 128);
        let tg = spec.kernel_time(&gpu(), nd);
        let tc = spec.kernel_time(&cpu(), nd);
        assert!(tg < tc, "gpu={tg} cpu={tc}");
    }

    #[test]
    fn uncoalesced_memory_bound_kernel_prefers_cpu() {
        let traits = KernelTraits { coalescing: 0.05, ..KernelTraits::IDEAL };
        let spec = KernelCostSpec::memory_bound(256.0).with_traits(traits);
        let nd = NdRangeShape::new(1 << 20, 128);
        let tg = spec.kernel_time(&gpu(), nd);
        let tc = spec.kernel_time(&cpu(), nd);
        assert!(tc < tg, "cpu={tc} gpu={tg}");
    }

    #[test]
    fn kernel_time_scales_roughly_linearly_with_items() {
        let spec = KernelCostSpec::compute_bound(1_000.0);
        let small = spec.kernel_time(&gpu(), NdRangeShape::new(1 << 20, 128));
        let large = spec.kernel_time(&gpu(), NdRangeShape::new(1 << 24, 128));
        let ratio = large.ratio(small);
        assert!((8.0..=32.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn minikernel_time_is_constant_in_problem_size() {
        // The headline property behind Figure 8.
        let spec = KernelCostSpec::compute_bound(10_000.0);
        let t1 = spec.minikernel_time(&gpu(), NdRangeShape::new(1 << 16, 128));
        let t2 = spec.minikernel_time(&gpu(), NdRangeShape::new(1 << 26, 128));
        assert_eq!(t1, t2);
    }

    #[test]
    fn minikernel_time_is_much_smaller_than_kernel_time() {
        let spec = KernelCostSpec::compute_bound(10_000.0);
        let nd = NdRangeShape::new(1 << 24, 128);
        for dev in [gpu(), cpu()] {
            let full = spec.kernel_time(&dev, nd);
            let mini = spec.minikernel_time(&dev, nd);
            assert!(
                mini.as_nanos() * 100 < full.as_nanos(),
                "{}: mini={mini} full={full}",
                dev.name
            );
        }
    }

    #[test]
    fn minikernel_preserves_device_ranking_for_compute_bound() {
        let spec = KernelCostSpec::compute_bound(20_000.0);
        let nd = NdRangeShape::new(1 << 24, 128);
        let full_gpu_wins = spec.kernel_time(&gpu(), nd) < spec.kernel_time(&cpu(), nd);
        let mini_gpu_wins = spec.minikernel_time(&gpu(), nd) < spec.minikernel_time(&cpu(), nd);
        assert_eq!(full_gpu_wins, mini_gpu_wins);
    }

    #[test]
    fn launch_overhead_dominates_empty_kernels() {
        let spec = KernelCostSpec {
            flops_per_item: 0.0,
            bytes_per_item: 0.0,
            traits: KernelTraits::IDEAL,
        };
        let nd = NdRangeShape::new(1, 1);
        assert_eq!(spec.kernel_time(&gpu(), nd), gpu().launch_overhead);
    }

    #[test]
    fn total_bytes_and_flops() {
        let spec = KernelCostSpec {
            flops_per_item: 3.0,
            bytes_per_item: 16.0,
            traits: KernelTraits::IDEAL,
        };
        let nd = NdRangeShape::new(1000, 100);
        assert_eq!(spec.total_bytes(nd), 16_000);
        assert_eq!(spec.total_flops(nd), 3_000.0);
    }
}

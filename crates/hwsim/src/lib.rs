#![warn(missing_docs)]

//! # hwsim — deterministic simulator of a heterogeneous compute node
//!
//! This crate is the hardware substrate for the MultiCL reproduction. The
//! original paper ran on a dual-socket AMD Opteron 6134 node with two NVIDIA
//! Tesla C2050 GPUs; we reproduce that node (and arbitrary others) as a
//! *discrete-event simulation* with an exact virtual clock.
//!
//! The pieces:
//!
//! * [`time`] — `SimTime` / `SimDuration` newtypes (nanosecond resolution).
//! * [`device`] — device specifications (CPU/GPU compute and memory models)
//!   and the efficiency model that maps kernel characteristics to sustained
//!   rates on a given device.
//! * [`topology`] — sockets, PCIe links, NUMA affinity, and transfer-time
//!   computation for host–device and device–device movement.
//! * [`cost`] — the roofline kernel cost model: a kernel declares per-item
//!   flops/bytes and qualitative traits; the model produces execution times
//!   per device, including *minikernel* (single-workgroup) times.
//! * [`engine`] — per-device timelines with eager dependency resolution for
//!   in-order command streams; produces timestamped command records.
//! * [`node`] — prebuilt node configurations, including the paper's testbed.
//! * [`cluster`] — multi-node fleet configurations: N nodes joined by an
//!   inter-node interconnect with calibrated latency/bandwidth (the SnuCL
//!   cluster substrate one level up from a single node).
//! * [`microbench`] — bandwidth and instruction-throughput benchmarks run
//!   *against the simulator*, used by MultiCL's device profiler.
//! * [`trace`] — execution traces (who ran what, when) used to regenerate the
//!   paper's kernel-distribution and per-iteration figures.
//! * [`stats`] — small numeric helpers (geomean, normalization, percentiles).
//! * [`json`] — a minimal JSON value/parser/writer (the workspace builds
//!   offline with no external crates; this replaces `serde_json`).
//! * [`sync`] — `parking_lot`-style locking over `std::sync`.
//! * [`xrand`] — a seeded xorshift64* generator (replaces `rand` for
//!   deterministic tests and load generation).
//!
//! Everything is deterministic: the same program produces the same virtual
//! timeline on every run, which makes the paper's figures exactly
//! reproducible.

pub mod cluster;
pub mod cost;
pub mod device;
pub mod engine;
pub mod fault;
pub mod json;
pub mod microbench;
pub mod node;
pub mod report;
pub mod stats;
pub mod sync;
pub mod time;
pub mod topology;
pub mod trace;
pub mod waitlist;
pub mod xrand;

pub use cluster::{ClusterConfig, InterconnectSpec};
pub use cost::{KernelCostSpec, KernelTraits, NdRangeShape};
pub use device::{DeviceId, DeviceSpec, DeviceType};
pub use engine::{CommandDesc, CommandKind, Engine, EventId, EventStamp};
pub use fault::{CommandStatus, FailureRecord, FaultKind, FaultPlan};
pub use node::NodeConfig;
pub use time::{SimDuration, SimTime};
pub use topology::{LinkSpec, Topology, TransferKind};
pub use trace::{Trace, TraceRecord};
pub use waitlist::WaitList;

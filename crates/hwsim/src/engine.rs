//! The discrete-event execution engine.
//!
//! Commands arrive from in-order command queues (via `clrt`). Because every
//! dependency of a command is already submitted when the command itself is
//! submitted (in-order queues + OpenCL event wait lists may only reference
//! existing events), the engine can *eagerly* timestamp each command at
//! submission:
//!
//! ```text
//! start = max(host_now, device_available, max(dep.end for dep in waits))
//! end   = start + duration
//! ```
//!
//! Each device has **two lanes**: a compute engine (kernels) and a copy
//! engine (DMA transfers), mirroring the paper-era hardware where transfers
//! and kernels overlap when nothing orders them. Commands serialize within
//! their lane; ordering *across* lanes comes only from event waits (which is
//! how in-order command queues keep their semantics). The host clock only
//! advances when the program *waits* (blocking reads, `clFinish`,
//! `clWaitForEvents`) — between synchronizations the host enqueues
//! asynchronously at a fixed small cost, exactly like a real runtime.

use crate::device::DeviceId;
use crate::fault::{CommandStatus, FailureRecord, FaultKind, FaultPlan, FaultState};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceRecord};
use crate::waitlist::WaitList;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Index of an event in the engine's event table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub usize);

/// Timestamps recorded for one command, mirroring OpenCL's
/// `CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStamp {
    /// When the host enqueued the command.
    pub queued: SimTime,
    /// When the runtime handed it to the device (same as `queued` here).
    pub submit: SimTime,
    /// When the device began executing it.
    pub start: SimTime,
    /// When execution completed.
    pub end: SimTime,
}

impl EventStamp {
    /// Device execution time of the command.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// What a command does (for tracing/accounting; the engine itself only needs
/// the duration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandKind {
    /// An NDRange kernel execution.
    Kernel {
        /// Kernel function name.
        name: Arc<str>,
    },
    /// A data movement command.
    Transfer {
        /// Direction of movement.
        kind: crate::topology::TransferKind,
        /// Payload size.
        bytes: u64,
    },
    /// A zero-duration marker (used for barriers/markers and user events).
    Marker,
}

/// A command submitted to the engine.
#[derive(Debug, Clone)]
pub struct CommandDesc {
    /// The device whose timeline the command occupies.
    pub device: DeviceId,
    /// What the command is (trace/accounting only).
    pub kind: CommandKind,
    /// Precomputed execution duration (from the cost model / topology).
    pub duration: SimDuration,
    /// Events that must complete before this command may start.
    pub waits: WaitList,
    /// Logical command-queue id, recorded in the trace.
    pub queue: usize,
}

/// One execution lane (compute or copy engine) of a device.
#[derive(Debug, Clone, Default)]
struct LaneState {
    /// The instant the lane becomes free.
    available: SimTime,
    /// Total busy time accumulated (for utilization reporting).
    busy: SimDuration,
}

/// Per-device execution state: a compute engine and a copy engine.
#[derive(Debug, Clone, Default)]
struct DeviceState {
    compute: LaneState,
    copy: LaneState,
}

impl DeviceState {
    fn lane_mut(&mut self, kind: &CommandKind) -> &mut LaneState {
        match kind {
            CommandKind::Transfer { .. } => &mut self.copy,
            CommandKind::Kernel { .. } | CommandKind::Marker => &mut self.compute,
        }
    }
}

/// The discrete-event engine: device timelines + host clock + event table.
#[derive(Debug)]
pub struct Engine {
    devices: Vec<DeviceState>,
    host_now: SimTime,
    /// Live (non-retired) event stamps; event `i` lives at
    /// `events[i - events_base]`. `events_base` only moves when retirement
    /// is enabled (see [`Engine::set_event_retirement`]).
    events: VecDeque<EventStamp>,
    events_base: usize,
    /// Pin refcounts (`EventId.0` → live handle count); pinned events are
    /// never retired so their stamps stay queryable.
    pins: HashMap<usize, u32>,
    retire_enabled: bool,
    retired: u64,
    trace: Trace,
    /// Free-form label attached to subsequently-submitted commands
    /// (e.g. "profiling", "iter:3"); drives overhead accounting.
    tag: Option<Arc<str>>,
    /// Host-side cost charged per enqueue (driver call overhead).
    enqueue_cost: SimDuration,
    /// Installed fault-injection state (plan + seeded coin stream), if any.
    fault: Option<FaultState>,
    /// Fault kind per failed event, keyed by raw event id. Sparse and never
    /// compacted: status queries stay valid after the stamp retires.
    statuses: HashMap<usize, FaultKind>,
    /// Failed commands in submission order (see [`FailureRecord`]).
    failures: Vec<FailureRecord>,
}

impl Engine {
    /// Create an engine for `device_count` devices, all idle at t=0.
    pub fn new(device_count: usize) -> Self {
        Engine {
            devices: vec![DeviceState::default(); device_count],
            host_now: SimTime::ZERO,
            events: VecDeque::with_capacity(1024),
            events_base: 0,
            pins: HashMap::new(),
            retire_enabled: false,
            retired: 0,
            trace: Trace::default(),
            tag: None,
            enqueue_cost: SimDuration::from_nanos(500),
            fault: None,
            statuses: HashMap::new(),
            failures: Vec::new(),
        }
    }

    /// Number of device timelines.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The current host (virtual) time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.host_now
    }

    /// Set the label attached to subsequent trace records (`None` clears it).
    pub fn set_tag(&mut self, tag: Option<&str>) {
        self.tag = tag.map(Arc::from);
    }

    /// Current trace tag, if any.
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// Submit a command; returns its completion event. Timestamps are
    /// resolved immediately (see module docs).
    ///
    /// # Panics
    /// Panics if `desc.device` or any wait event is out of range — both
    /// indicate a runtime bug, not a user error.
    pub fn submit(&mut self, desc: CommandDesc) -> EventId {
        let dev =
            self.devices.get_mut(desc.device.index()).expect("CommandDesc.device out of range");
        let lane = dev.lane_mut(&desc.kind);
        // Host pays a small driver cost per enqueue.
        self.host_now += self.enqueue_cost;
        let queued = self.host_now;
        let mut ready = queued.max(lane.available);
        for w in desc.waits.as_slice() {
            if w.0 < self.events_base {
                // Retired ⇒ it ended at or before some earlier host_now, and
                // `queued >= host_now >= end`, so it cannot move `ready`.
                continue;
            }
            let stamp = self.events.get(w.0 - self.events_base).expect("wait event out of range");
            ready = ready.max(stamp.end);
        }
        let start = ready;
        // Fault injection (see [`crate::fault`]): degradation stretches the
        // duration, a seeded coin fails transfers, device loss truncates.
        let mut duration = desc.duration;
        let mut fault = None;
        if let Some(fs) = self.fault.as_mut() {
            let factor = fs.plan.degradation_at(desc.device, start);
            if factor > 1.0 {
                duration = SimDuration::from_secs_f64(duration.as_secs_f64() * factor);
            }
            // The coin is flipped for every transfer (before the loss check)
            // so the stream's position depends only on the transfer count.
            if matches!(desc.kind, CommandKind::Transfer { .. }) && fs.transfer_fails() {
                fault = Some(FaultKind::TransientTransfer);
            }
            if let Some(lost) = fs.plan.loss_at(desc.device) {
                if start >= lost {
                    // Dead device: the command fails instantly, no lane time.
                    duration = SimDuration::ZERO;
                    fault = Some(FaultKind::DeviceLost);
                } else if start + duration > lost {
                    // Straddles the loss: truncated at the instant of death.
                    duration = lost.saturating_since(start);
                    fault = Some(FaultKind::DeviceLost);
                }
            }
        }
        let end = start + duration;
        lane.available = end;
        lane.busy += duration;
        let stamp = EventStamp { queued, submit: queued, start, end };
        let id = EventId(self.events_base + self.events.len());
        self.events.push_back(stamp);
        if let Some(kind) = fault {
            self.statuses.insert(id.0, kind);
            self.failures.push(FailureRecord {
                event: id,
                device: desc.device,
                queue: desc.queue,
                kind,
                at: end,
            });
        }
        self.trace.push(TraceRecord {
            device: desc.device,
            queue: desc.queue,
            kind: desc.kind,
            stamp,
            tag: self.tag.clone(),
        });
        id
    }

    /// Create a marker event that completes at the current host time without
    /// occupying any device (used for user events and completed-state queries).
    pub fn marker_now(&mut self) -> EventId {
        let t = self.host_now;
        let id = EventId(self.events_base + self.events.len());
        self.events.push_back(EventStamp { queued: t, submit: t, start: t, end: t });
        id
    }

    /// The recorded timestamps of `ev`.
    ///
    /// # Panics
    /// Panics if the event has been retired (only possible in the opt-in
    /// retirement mode; live `Event` handles pin their stamps).
    #[inline]
    pub fn stamp(&self, ev: EventId) -> EventStamp {
        assert!(ev.0 >= self.events_base, "event {} has been retired", ev.0);
        self.events[ev.0 - self.events_base]
    }

    /// Block the host until `ev` completes (`clWaitForEvents`).
    pub fn wait(&mut self, ev: EventId) {
        if ev.0 < self.events_base {
            // Retired events completed at or before the current host time.
            return;
        }
        let end = self.events[ev.0 - self.events_base].end;
        self.host_now = self.host_now.max(end);
    }

    /// Block the host until every submitted command on `dev` completes
    /// (both lanes drain).
    pub fn finish_device(&mut self, dev: DeviceId) {
        let d = &self.devices[dev.index()];
        let avail = d.compute.available.max(d.copy.available);
        self.host_now = self.host_now.max(avail);
    }

    /// Block the host until *all* devices are idle.
    pub fn finish_all(&mut self) {
        for d in 0..self.devices.len() {
            self.finish_device(DeviceId(d));
        }
    }

    /// Advance the host clock by `d` (models host-side compute between
    /// enqueues).
    pub fn host_busy(&mut self, d: SimDuration) {
        self.host_now += d;
    }

    /// Total busy time accumulated by `dev` (compute + copy lanes).
    pub fn device_busy(&self, dev: DeviceId) -> SimDuration {
        let d = &self.devices[dev.index()];
        d.compute.busy + d.copy.busy
    }

    /// Busy time accumulated by `dev`'s two engines separately:
    /// `(compute_lane, copy_lane)`.
    pub fn device_lane_busy(&self, dev: DeviceId) -> (SimDuration, SimDuration) {
        let d = &self.devices[dev.index()];
        (d.compute.busy, d.copy.busy)
    }

    /// True once `ev` has completed in virtual time at the current host
    /// clock. Retired events are complete by the retirement rule.
    pub fn event_completed(&self, ev: EventId) -> bool {
        if ev.0 < self.events_base {
            return true;
        }
        match self.events.get(ev.0 - self.events_base) {
            Some(stamp) => stamp.end <= self.host_now,
            None => false,
        }
    }

    /// The instant `dev` becomes fully free (both lanes).
    pub fn device_available(&self, dev: DeviceId) -> SimTime {
        let d = &self.devices[dev.index()];
        d.compute.available.max(d.copy.available)
    }

    /// Read access to the accumulated trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Drain the accumulated trace, leaving it empty (used between
    /// experiment repetitions). Any configured record capacity is preserved.
    pub fn take_trace(&mut self) -> Trace {
        self.trace.take()
    }

    /// Mutable access to the trace (capacity configuration).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    // ---- event retirement (opt-in; bounded memory for long serving runs) --

    /// Enable/disable event retirement. When enabled, [`Engine::retire_completed`]
    /// compacts the front of the event table: an event may be retired once it
    /// has completed in virtual time (`end <= host_now`) and holds no pins.
    /// A retired id used in a wait list or `wait` call is a no-op — by the
    /// retire rule its `end` can no longer affect any timestamp — but
    /// querying its stamp panics.
    pub fn set_event_retirement(&mut self, enabled: bool) {
        self.retire_enabled = enabled;
    }

    /// Whether event retirement is enabled.
    pub fn event_retirement(&self) -> bool {
        self.retire_enabled
    }

    /// Pin `ev` so it survives retirement (refcounted; one live `Event`
    /// handle = one pin).
    pub fn pin_event(&mut self, ev: EventId) {
        if ev.0 < self.events_base {
            return;
        }
        *self.pins.entry(ev.0).or_insert(0) += 1;
    }

    /// Drop one pin from `ev`, and opportunistically retire the table front.
    pub fn unpin_event(&mut self, ev: EventId) {
        if let Some(n) = self.pins.get_mut(&ev.0) {
            *n -= 1;
            if *n == 0 {
                self.pins.remove(&ev.0);
            }
        }
        if self.retire_enabled {
            self.retire_completed();
        }
    }

    /// Retire completed, unpinned events from the front of the table.
    /// No-op unless retirement is enabled. Returns how many were retired.
    pub fn retire_completed(&mut self) -> usize {
        if !self.retire_enabled {
            return 0;
        }
        let mut n = 0;
        while let Some(front) = self.events.front() {
            if front.end > self.host_now || self.pins.contains_key(&self.events_base) {
                break;
            }
            self.events.pop_front();
            self.events_base += 1;
            n += 1;
        }
        self.retired += n as u64;
        n
    }

    /// Number of live (non-retired) entries in the event table.
    pub fn live_events(&self) -> usize {
        self.events.len()
    }

    /// Total events retired so far.
    pub fn retired_events(&self) -> u64 {
        self.retired
    }

    // ---- fault injection (opt-in; see `crate::fault`) ---------------------

    /// Install a fault plan. Replaces any existing plan; the transfer coin
    /// stream restarts from the new plan's seed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultState::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Terminal status of `ev`. Unlike [`Engine::stamp`] this stays valid
    /// after the event retires (failure marks are never compacted).
    pub fn event_status(&self, ev: EventId) -> CommandStatus {
        match self.statuses.get(&ev.0) {
            Some(&k) => CommandStatus::Failed(k),
            None => CommandStatus::Complete,
        }
    }

    /// True when `dev` has died at or before the current host time.
    pub fn device_lost(&self, dev: DeviceId) -> bool {
        self.device_lost_at(dev).is_some_and(|t| t <= self.host_now)
    }

    /// The virtual instant the plan loses `dev`, if it ever does.
    pub fn device_lost_at(&self, dev: DeviceId) -> Option<SimTime> {
        self.fault.as_ref().and_then(|f| f.plan.loss_at(dev))
    }

    /// The duration multiplier active on `dev` right now (1.0 = healthy).
    pub fn device_degradation(&self, dev: DeviceId) -> f64 {
        self.fault.as_ref().map_or(1.0, |f| f.plan.degradation_at(dev, self.host_now))
    }

    /// The failure log, in submission order. Incremental consumers remember
    /// the length they last saw and read the suffix.
    pub fn failures(&self) -> &[FailureRecord] {
        &self.failures
    }

    /// Total failed commands so far (monotonic).
    pub fn failure_count(&self) -> usize {
        self.failures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(name: &str) -> CommandKind {
        CommandKind::Kernel { name: Arc::from(name) }
    }

    fn cmd(dev: usize, ms: u64, waits: Vec<EventId>) -> CommandDesc {
        CommandDesc {
            device: DeviceId(dev),
            kind: kernel("k"),
            duration: SimDuration::from_millis(ms),
            waits: waits.into(),
            queue: 0,
        }
    }

    #[test]
    fn commands_on_one_device_serialize() {
        let mut e = Engine::new(2);
        let a = e.submit(cmd(0, 10, vec![]));
        let b = e.submit(cmd(0, 5, vec![]));
        assert_eq!(e.stamp(b).start, e.stamp(a).end);
        assert_eq!(e.stamp(b).duration(), SimDuration::from_millis(5));
    }

    #[test]
    fn transfer_and_kernel_lanes_overlap_on_one_device() {
        let mut e = Engine::new(1);
        let k = e.submit(cmd(0, 10, vec![]));
        let t = e.submit(CommandDesc {
            device: DeviceId(0),
            kind: CommandKind::Transfer {
                kind: crate::topology::TransferKind::HostToDevice,
                bytes: 1024,
            },
            duration: SimDuration::from_millis(10),
            waits: WaitList::new(),
            queue: 0,
        });
        // The copy engine does not wait for the compute engine.
        assert!(e.stamp(t).start < e.stamp(k).end);
        // But an explicit wait still orders across lanes.
        let t2 = e.submit(CommandDesc {
            device: DeviceId(0),
            kind: CommandKind::Transfer {
                kind: crate::topology::TransferKind::DeviceToHost,
                bytes: 1024,
            },
            duration: SimDuration::from_millis(1),
            waits: WaitList::one(k),
            queue: 0,
        });
        assert!(e.stamp(t2).start >= e.stamp(k).end);
    }

    #[test]
    fn commands_on_different_devices_overlap() {
        let mut e = Engine::new(2);
        let a = e.submit(cmd(0, 10, vec![]));
        let b = e.submit(cmd(1, 10, vec![]));
        // Both start at (almost) t=0; they run concurrently.
        assert!(e.stamp(b).start < e.stamp(a).end);
    }

    #[test]
    fn waits_delay_start() {
        let mut e = Engine::new(2);
        let a = e.submit(cmd(0, 10, vec![]));
        let b = e.submit(cmd(1, 5, vec![a]));
        assert_eq!(e.stamp(b).start, e.stamp(a).end);
    }

    #[test]
    fn host_wait_advances_clock() {
        let mut e = Engine::new(1);
        let a = e.submit(cmd(0, 10, vec![]));
        assert!(e.now() < e.stamp(a).end);
        e.wait(a);
        assert_eq!(e.now(), e.stamp(a).end);
        // Waiting again is idempotent.
        e.wait(a);
        assert_eq!(e.now(), e.stamp(a).end);
    }

    #[test]
    fn finish_all_reaches_max_device_time() {
        let mut e = Engine::new(3);
        e.submit(cmd(0, 10, vec![]));
        e.submit(cmd(1, 30, vec![]));
        e.submit(cmd(2, 20, vec![]));
        e.finish_all();
        assert!(e.now() >= SimTime::from_nanos(30_000_000));
    }

    #[test]
    fn commands_submitted_after_wait_start_later() {
        let mut e = Engine::new(2);
        let a = e.submit(cmd(0, 10, vec![]));
        e.wait(a);
        let b = e.submit(cmd(1, 1, vec![]));
        assert!(e.stamp(b).start >= e.stamp(a).end);
    }

    #[test]
    fn device_busy_accumulates() {
        let mut e = Engine::new(1);
        e.submit(cmd(0, 10, vec![]));
        e.submit(cmd(0, 5, vec![]));
        assert_eq!(e.device_busy(DeviceId(0)), SimDuration::from_millis(15));
    }

    #[test]
    fn trace_records_tags() {
        let mut e = Engine::new(1);
        e.set_tag(Some("profiling"));
        e.submit(cmd(0, 1, vec![]));
        e.set_tag(None);
        e.submit(cmd(0, 1, vec![]));
        let recs = &e.trace().records;
        assert_eq!(recs[0].tag.as_deref(), Some("profiling"));
        assert_eq!(recs[1].tag, None);
    }

    #[test]
    fn marker_completes_immediately() {
        let mut e = Engine::new(1);
        e.host_busy(SimDuration::from_millis(3));
        let m = e.marker_now();
        assert_eq!(e.stamp(m).end, e.now());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn submitting_to_unknown_device_panics() {
        let mut e = Engine::new(1);
        e.submit(cmd(5, 1, vec![]));
    }

    #[test]
    fn retirement_compacts_completed_events() {
        let mut e = Engine::new(1);
        e.set_event_retirement(true);
        let a = e.submit(cmd(0, 10, vec![]));
        let b = e.submit(cmd(0, 5, vec![a]));
        // Nothing has completed in virtual time yet.
        assert_eq!(e.retire_completed(), 0);
        e.wait(b);
        assert_eq!(e.retire_completed(), 2);
        assert_eq!(e.live_events(), 0);
        assert_eq!(e.retired_events(), 2);
        // Waiting on / depending on a retired event is a harmless no-op.
        let before = e.now();
        e.wait(a);
        assert_eq!(e.now(), before);
        let c = e.submit(cmd(0, 1, vec![a, b]));
        assert!(e.stamp(c).start >= before);
    }

    #[test]
    fn pinned_events_survive_retirement() {
        let mut e = Engine::new(1);
        e.set_event_retirement(true);
        let a = e.submit(cmd(0, 10, vec![]));
        let b = e.submit(cmd(0, 5, vec![]));
        e.pin_event(a);
        e.wait(b);
        // `a` is pinned, so nothing at or past it can retire.
        assert_eq!(e.retire_completed(), 0);
        assert_eq!(e.live_events(), 2);
        e.unpin_event(a); // also retires opportunistically
        assert_eq!(e.live_events(), 0);
    }

    #[test]
    fn retirement_is_noop_when_disabled() {
        let mut e = Engine::new(1);
        let a = e.submit(cmd(0, 1, vec![]));
        e.wait(a);
        assert_eq!(e.retire_completed(), 0);
        assert_eq!(e.live_events(), 1);
    }

    #[test]
    fn device_loss_truncates_and_then_fails_instantly() {
        let mut e = Engine::new(2);
        e.set_fault_plan(
            FaultPlan::new(1).lose_device(DeviceId(0), SimTime::from_nanos(15_000_000)),
        );
        // Straddles the loss instant: truncated, failed, lane time charged
        // only up to the death.
        let a = e.submit(cmd(0, 10, vec![]));
        let b = e.submit(cmd(0, 10, vec![]));
        assert!(e.event_status(a).is_ok());
        assert_eq!(e.event_status(b), CommandStatus::Failed(FaultKind::DeviceLost));
        assert_eq!(e.stamp(b).end, SimTime::from_nanos(15_000_000));
        assert!(e.device_busy(DeviceId(0)) < SimDuration::from_millis(20));
        // After the death every command on the device fails instantly.
        let c = e.submit(cmd(0, 10, vec![]));
        assert_eq!(e.event_status(c), CommandStatus::Failed(FaultKind::DeviceLost));
        assert_eq!(e.stamp(c).duration(), SimDuration::ZERO);
        // The other device is untouched.
        let d = e.submit(cmd(1, 10, vec![]));
        assert!(e.event_status(d).is_ok());
        // The failure log attributes both failures to device 0.
        assert_eq!(e.failure_count(), 2);
        assert!(e.failures().iter().all(|f| f.device == DeviceId(0)));
        // Loss queries flip once virtual time passes the instant.
        assert_eq!(e.device_lost_at(DeviceId(0)), Some(SimTime::from_nanos(15_000_000)));
        e.wait(b);
        assert!(e.device_lost(DeviceId(0)));
        assert!(!e.device_lost(DeviceId(1)));
    }

    #[test]
    fn transfer_failures_are_seed_deterministic_and_charge_time() {
        let run = |seed: u64| {
            let mut e = Engine::new(1);
            e.set_fault_plan(FaultPlan::new(seed).with_transfer_failure_rate(0.5));
            let mut failed = Vec::new();
            for i in 0..32 {
                let ev = e.submit(CommandDesc {
                    device: DeviceId(0),
                    kind: CommandKind::Transfer {
                        kind: crate::topology::TransferKind::HostToDevice,
                        bytes: 64,
                    },
                    duration: SimDuration::from_micros(10),
                    waits: WaitList::new(),
                    queue: 0,
                });
                if !e.event_status(ev).is_ok() {
                    failed.push(i);
                }
            }
            (failed, e.device_busy(DeviceId(0)))
        };
        let (f1, busy1) = run(42);
        let (f2, _) = run(42);
        assert_eq!(f1, f2, "same seed must fail the same transfers");
        assert!(!f1.is_empty() && f1.len() < 32, "rate 0.5 fails some but not all");
        // Failed transfers still occupy the copy engine for the full time.
        assert_eq!(busy1, SimDuration::from_micros(320));
        let (f3, _) = run(43);
        assert_ne!(f1, f3, "a different seed draws a different stream");
        // Kernels never consume the transfer coin stream.
        let mut e = Engine::new(1);
        e.set_fault_plan(FaultPlan::new(42).with_transfer_failure_rate(0.5));
        for _ in 0..8 {
            let ev = e.submit(cmd(0, 1, vec![]));
            assert!(e.event_status(ev).is_ok());
        }
    }

    #[test]
    fn degraded_device_runs_slower_from_its_start_instant() {
        let mut e = Engine::new(1);
        e.set_fault_plan(FaultPlan::new(1).degrade_device(
            DeviceId(0),
            2.0,
            SimTime::from_nanos(10_000_000),
        ));
        let a = e.submit(cmd(0, 5, vec![])); // starts near t=0: full speed
        assert_eq!(e.stamp(a).duration(), SimDuration::from_millis(5));
        e.host_busy(SimDuration::from_millis(20));
        let b = e.submit(cmd(0, 5, vec![])); // starts past t=10ms: half speed
        assert_eq!(e.stamp(b).duration(), SimDuration::from_millis(10));
        assert!(e.event_status(b).is_ok(), "degradation is not a failure");
        assert_eq!(e.device_degradation(DeviceId(0)), 2.0);
        assert_eq!(e.failure_count(), 0);
    }

    #[test]
    fn fault_statuses_survive_event_retirement() {
        let mut e = Engine::new(1);
        e.set_event_retirement(true);
        e.set_fault_plan(FaultPlan::new(1).lose_device(DeviceId(0), SimTime::ZERO));
        let a = e.submit(cmd(0, 10, vec![]));
        e.wait(a);
        assert!(e.retire_completed() >= 1);
        // The stamp is gone but the status is still queryable.
        assert_eq!(e.event_status(a), CommandStatus::Failed(FaultKind::DeviceLost));
    }

    #[test]
    fn no_fault_plan_changes_nothing() {
        let mut e = Engine::new(1);
        assert!(e.fault_plan().is_none());
        let a = e.submit(cmd(0, 10, vec![]));
        assert!(e.event_status(a).is_ok());
        assert!(!e.device_lost(DeviceId(0)));
        assert_eq!(e.device_degradation(DeviceId(0)), 1.0);
        assert_eq!(e.failure_count(), 0);
    }

    #[test]
    #[should_panic(expected = "has been retired")]
    fn stamp_of_retired_event_panics() {
        let mut e = Engine::new(1);
        e.set_event_retirement(true);
        let a = e.submit(cmd(0, 1, vec![]));
        e.wait(a);
        e.retire_completed();
        let _ = e.stamp(a);
    }
}

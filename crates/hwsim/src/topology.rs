//! Node interconnect topology: sockets, PCIe links, and transfer times.
//!
//! The paper's testbed has nonuniform host–device distances: both Tesla C2050
//! GPUs hang off socket 1 while the host thread typically runs on socket 0,
//! so every H2D/D2H transfer from socket 0 crosses the inter-socket
//! HyperTransport link and pays a bandwidth/latency penalty. MultiCL's device
//! profiler measures exactly these (socket, device) bandwidths and the device
//! mapper folds them into its cost metric.
//!
//! Device-to-device transfers go through host memory (one D2H then one H2D),
//! mirroring the paper's observation that cross-vendor direct D2D is
//! unavailable (GPUDirect has "markedly limited OpenCL support").

use crate::device::{DeviceId, DeviceSpec, DeviceType};
use crate::time::SimDuration;

/// A point-to-point link: fixed latency plus a bandwidth-proportional term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Per-transfer fixed cost (driver + DMA setup).
    pub latency: SimDuration,
    /// Asymptotic bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl LinkSpec {
    /// A link with the given latency in microseconds and bandwidth in GB/s.
    pub fn new(latency_us: u64, bandwidth_gbs: f64) -> Self {
        LinkSpec { latency: SimDuration::from_micros(latency_us), bandwidth_gbs }
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let wire = SimDuration::from_secs_f64(bytes as f64 / (self.bandwidth_gbs * 1e9));
        self.latency + wire
    }

    /// Effective bandwidth (GB/s) achieved for a transfer of `bytes` —
    /// latency-bound for small sizes, approaching `bandwidth_gbs` for large.
    pub fn effective_bandwidth_gbs(&self, bytes: u64) -> f64 {
        let t = self.transfer_time(bytes).as_secs_f64();
        if t <= 0.0 {
            self.bandwidth_gbs
        } else {
            bytes as f64 / t / 1e9
        }
    }
}

/// Which direction a transfer moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Host memory to device memory.
    HostToDevice,
    /// Device memory to host memory.
    DeviceToHost,
    /// Device to device (staged through the host).
    DeviceToDevice,
}

/// The node's interconnect: per-(socket, device) PCIe links plus the
/// inter-socket penalty.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of CPU sockets.
    pub sockets: usize,
    /// The socket the host (control) thread is pinned to.
    pub host_socket: usize,
    /// Base PCIe link for each device when accessed from its own socket.
    /// Indexed by device id.
    pub device_links: Vec<LinkSpec>,
    /// Multiplicative bandwidth derate when a transfer crosses sockets
    /// (e.g. HyperTransport hop). 1.0 = no penalty.
    pub cross_socket_derate: f64,
    /// Additional latency per cross-socket hop.
    pub cross_socket_latency: SimDuration,
    /// Host memcpy bandwidth (used for host-side staging copies).
    pub host_memcpy: LinkSpec,
}

impl Topology {
    /// Effective link between the host thread (on `host_socket`) and `dev`.
    ///
    /// If the device sits on a different socket than the host thread, the
    /// bandwidth is derated and extra latency added.
    pub fn host_link(&self, dev: DeviceId, specs: &[DeviceSpec]) -> LinkSpec {
        let base = self.device_links[dev.index()];
        let dev_socket = specs[dev.index()].socket;
        match dev_socket {
            // CPU device "transfers" are host-memory copies.
            None => self.host_memcpy,
            Some(s) if s == self.host_socket => base,
            Some(_) => LinkSpec {
                latency: base.latency + self.cross_socket_latency,
                bandwidth_gbs: base.bandwidth_gbs * self.cross_socket_derate,
            },
        }
    }

    /// Time to move `bytes` between host and `dev` in either direction.
    /// H2D and D2H are symmetric in this model (true to within a few percent
    /// on the paper's PCIe gen-2 parts).
    pub fn host_transfer_time(
        &self,
        dev: DeviceId,
        bytes: u64,
        specs: &[DeviceSpec],
    ) -> SimDuration {
        self.host_link(dev, specs).transfer_time(bytes)
    }

    /// Time to move `bytes` from `src` device to `dst` device, staged through
    /// host memory (D2H + H2D). Same-device copies use device memory bandwidth.
    pub fn device_transfer_time(
        &self,
        src: DeviceId,
        dst: DeviceId,
        bytes: u64,
        specs: &[DeviceSpec],
    ) -> SimDuration {
        if src == dst {
            // Intra-device copy at device memory bandwidth (read + write).
            let spec = &specs[src.index()];
            return SimDuration::from_secs_f64(2.0 * bytes as f64 / (spec.mem_bandwidth_gbs * 1e9));
        }
        self.host_transfer_time(src, bytes, specs) + self.host_transfer_time(dst, bytes, specs)
    }

    /// True if `dev` is the CPU device (its memory *is* host memory).
    pub fn is_host_resident(&self, dev: DeviceId, specs: &[DeviceSpec]) -> bool {
        specs[dev.index()].device_type == DeviceType::Cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;

    #[test]
    fn link_transfer_time_is_latency_plus_wire() {
        let link = LinkSpec::new(10, 8.0);
        // 80 MB at 8 GB/s = 10 ms, plus 10 µs latency.
        let t = link.transfer_time(80 << 20);
        let expect =
            SimDuration::from_micros(10) + SimDuration::from_secs_f64((80 << 20) as f64 / 8e9);
        assert_eq!(t, expect);
    }

    #[test]
    fn effective_bandwidth_is_latency_bound_for_small_transfers() {
        let link = LinkSpec::new(10, 8.0);
        let small = link.effective_bandwidth_gbs(1024);
        let large = link.effective_bandwidth_gbs(1 << 30);
        assert!(small < 0.5, "small transfers should be latency bound: {small}");
        assert!(large > 7.5, "large transfers should approach peak: {large}");
        assert!(small < large);
    }

    #[test]
    fn cross_socket_transfer_is_slower() {
        let node = NodeConfig::paper_node();
        let gpu0 = DeviceId(1);
        // Paper node: host thread on socket 0, GPUs on socket 1.
        let cross = node.topology.host_transfer_time(gpu0, 64 << 20, &node.devices);
        let mut near = node.clone();
        near.topology.host_socket = 1;
        let local = near.topology.host_transfer_time(gpu0, 64 << 20, &near.devices);
        assert!(cross > local, "cross={cross} local={local}");
    }

    #[test]
    fn d2d_equals_d2h_plus_h2d() {
        let node = NodeConfig::paper_node();
        let (g0, g1) = (DeviceId(1), DeviceId(2));
        let bytes = 32 << 20;
        let d2d = node.topology.device_transfer_time(g0, g1, bytes, &node.devices);
        let staged = node.topology.host_transfer_time(g0, bytes, &node.devices)
            + node.topology.host_transfer_time(g1, bytes, &node.devices);
        assert_eq!(d2d, staged);
    }

    #[test]
    fn same_device_copy_uses_device_bandwidth() {
        let node = NodeConfig::paper_node();
        let g0 = DeviceId(1);
        let t = node.topology.device_transfer_time(g0, g0, 1 << 20, &node.devices);
        // 2 MB of traffic at 144 GB/s ≈ 14.5 µs — far below any PCIe trip.
        assert!(t < SimDuration::from_micros(100), "{t}");
    }

    #[test]
    fn cpu_device_transfers_run_at_memcpy_speed() {
        let node = NodeConfig::paper_node();
        let cpu = DeviceId(0);
        let gpu = DeviceId(1);
        let bytes = 64 << 20;
        let t_cpu = node.topology.host_transfer_time(cpu, bytes, &node.devices);
        let t_gpu = node.topology.host_transfer_time(gpu, bytes, &node.devices);
        assert!(t_cpu < t_gpu, "host<->CPU-device should beat PCIe: {t_cpu} vs {t_gpu}");
    }
}

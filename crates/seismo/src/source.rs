//! The seismic source time function.

/// Ricker wavelet with peak frequency `f` (Hz) at time `t` (s), delayed so
/// the wavelet starts near zero: `r(τ) = (1 − 2π²f²τ²)·exp(−π²f²τ²)` with
/// `τ = t − 1/f`.
pub fn ricker(t: f64, f: f64) -> f64 {
    let tau = t - 1.0 / f;
    let a = std::f64::consts::PI * f * tau;
    let a2 = a * a;
    (1.0 - 2.0 * a2) * (-a2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_at_the_delay_time() {
        let f = 5.0;
        let peak = ricker(1.0 / f, f);
        assert!((peak - 1.0).abs() < 1e-12);
        assert!(ricker(1.0 / f + 0.05, f) < peak);
        assert!(ricker(1.0 / f - 0.05, f) < peak);
    }

    #[test]
    fn wavelet_decays_to_zero() {
        let f = 5.0;
        assert!(ricker(0.0, f).abs() < 0.1);
        assert!(ricker(10.0, f).abs() < 1e-12);
    }

    #[test]
    fn wavelet_has_zero_mean_shape() {
        // The Ricker wavelet integrates to ~0 over its support.
        let f = 4.0;
        let dt = 1e-3;
        let integral: f64 = (0..2000).map(|s| ricker(s as f64 * dt, f) * dt).sum();
        assert!(integral.abs() < 1e-3, "{integral}");
    }
}

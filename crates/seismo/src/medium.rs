//! The elastic medium: homogeneous or depth-layered, matching DISFD's
//! "propagation of waves in a layered medium" with "the Earth's velocity
//! structures as input".

/// Elastic properties of one material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Density ρ.
    pub rho: f64,
    /// Lamé λ.
    pub lam: f64,
    /// Lamé μ (shear modulus).
    pub mu: f64,
}

impl Material {
    /// P-wave speed √((λ+2μ)/ρ).
    pub fn vp(&self) -> f64 {
        ((self.lam + 2.0 * self.mu) / self.rho).sqrt()
    }

    /// S-wave speed √(μ/ρ).
    pub fn vs(&self) -> f64 {
        (self.mu / self.rho).sqrt()
    }
}

/// One horizontal layer: a material extending down to (and excluding)
/// depth index `bottom_k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Layer {
    /// First depth index *below* this layer (exclusive upper bound on `k`).
    pub bottom_k: usize,
    /// The layer's material.
    pub material: Material,
}

/// A depth-dependent elastic medium (horizontally stratified, like the
/// 1-D Earth models seismic codes take as input).
#[derive(Debug, Clone, PartialEq)]
pub struct Medium {
    layers: Vec<Layer>,
}

impl Medium {
    /// A single material everywhere.
    pub fn homogeneous(rho: f64, lam: f64, mu: f64) -> Medium {
        Medium { layers: vec![Layer { bottom_k: usize::MAX, material: Material { rho, lam, mu } }] }
    }

    /// A stratified medium. Layers must be in increasing `bottom_k` order;
    /// the last layer extends to the bottom regardless of its `bottom_k`.
    ///
    /// # Panics
    /// Panics on an empty layer list or non-increasing boundaries — a
    /// malformed Earth model is a setup bug.
    pub fn layered(layers: Vec<Layer>) -> Medium {
        assert!(!layers.is_empty(), "a medium needs at least one layer");
        assert!(
            layers.windows(2).all(|w| w[0].bottom_k < w[1].bottom_k),
            "layer boundaries must strictly increase"
        );
        Medium { layers }
    }

    /// A conventional two-layer crust-over-mantle toy model: a slow, light
    /// layer above `interface_k` and a fast, dense half-space below.
    pub fn two_layer(interface_k: usize) -> Medium {
        Medium::layered(vec![
            Layer { bottom_k: interface_k, material: Material { rho: 1.0, lam: 1.0, mu: 1.0 } },
            Layer { bottom_k: usize::MAX, material: Material { rho: 1.3, lam: 3.0, mu: 2.5 } },
        ])
    }

    /// The material at depth index `k`.
    #[inline]
    pub fn at_depth(&self, k: usize) -> Material {
        for layer in &self.layers {
            if k < layer.bottom_k {
                return layer.material;
            }
        }
        self.layers.last().expect("non-empty by construction").material
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The stiffest P-wave speed in the model (drives the CFL limit).
    pub fn max_vp(&self) -> f64 {
        self.layers.iter().map(|l| l.material.vp()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_medium_is_depth_independent() {
        let m = Medium::homogeneous(1.0, 2.0, 3.0);
        assert_eq!(m.at_depth(0), m.at_depth(1000));
        assert_eq!(m.layer_count(), 1);
    }

    #[test]
    fn layered_lookup_respects_boundaries() {
        let m = Medium::two_layer(5);
        assert_eq!(m.at_depth(0), m.at_depth(4));
        assert_ne!(m.at_depth(4), m.at_depth(5));
        assert_eq!(m.at_depth(5), m.at_depth(50));
        // The lower half-space is faster.
        assert!(m.at_depth(5).vp() > m.at_depth(0).vp());
    }

    #[test]
    fn wave_speeds_are_physical() {
        let m = Material { rho: 2.0, lam: 3.0, mu: 1.5 };
        assert!((m.vp() - (6.0f64 / 2.0).sqrt()).abs() < 1e-12);
        assert!((m.vs() - 0.75f64.sqrt()).abs() < 1e-12);
        assert!(m.vp() > m.vs(), "P waves outrun S waves");
    }

    #[test]
    fn max_vp_tracks_the_stiffest_layer() {
        let m = Medium::two_layer(8);
        assert_eq!(m.max_vp(), m.at_depth(8).vp());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn misordered_layers_are_rejected() {
        let mat = Material { rho: 1.0, lam: 1.0, mu: 1.0 };
        Medium::layered(vec![
            Layer { bottom_k: 5, material: mat },
            Layer { bottom_k: 5, material: mat },
        ]);
    }
}

#![warn(missing_docs)]

//! # seismo — FDM-Seismology on `clrt`/`multicl`
//!
//! Reproduction of the paper's real-world case study (§VI-B2): a
//! finite-difference seismic wave propagation code in the velocity–stress
//! formulation, modeling waves from a point source in a layered elastic
//! medium with absorbing (sponge-taper) boundaries.
//!
//! Structure follows the OpenCL port the paper evaluates:
//!
//! * the wavefield is split into **two independent regions**, each computed
//!   on its own command queue (the task parallelism MultiCL schedules);
//! * each iteration computes **velocity** wavefields (7 kernels: 3 on
//!   region 1, 4 on region 2) then **stress** wavefields (25 kernels: 11 on
//!   region 1, 14 on region 2), each phase a synchronization epoch;
//! * two memory layouts exist: **column-major** (directly following the
//!   Fortran arrays — fast on the CPU, uncoalesced on GPUs) and
//!   **row-major** (GPU-friendly). Figure 9's crossover — column-major best
//!   on (CPU,CPU), row-major best on (GPU0,GPU1) — falls out of the layout's
//!   coalescing characteristics.
//!
//! Physics simplifications vs. the original DISFD code (documented in
//! DESIGN.md): collocated central differences instead of a staggered grid,
//! Cerjan sponge tapers instead of PML, homogeneous medium per region. The
//! kernel structure, data volumes, and layout behaviour — what the paper's
//! evaluation actually exercises — are preserved.

pub mod app;
pub mod grid;
pub mod kernels;
pub mod medium;
pub mod source;

pub use app::{FdmApp, FdmConfig, FdmPlan, IterTime};
pub use grid::{Dims, Layout};
pub use medium::{Layer, Material, Medium};
pub use source::ricker;

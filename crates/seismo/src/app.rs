//! The two-region FDM-Seismology application driver.

use crate::grid::{Dims, Layout};
use crate::kernels::{
    AbsorbStrip, Attenuate, FreeSurface, Params, SourceInject, StressNormal, StressShear,
    StressTaper, VelTaper, VelUpdate,
};
use clrt::error::ClResult;
use clrt::{ArgValue, Buffer, Kernel, KernelBody, NdRange};
use hwsim::{DeviceId, SimDuration};
use multicl::{MulticlContext, QueueSchedFlags, SchedQueue};
use std::sync::Arc;

/// How the two region queues are created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdmPlan {
    /// Automatic scheduling with the paper's choice for this app:
    /// `SCHED_AUTO_DYNAMIC | SCHED_KERNEL_EPOCH` (§VI-B2).
    Auto,
    /// Automatic scheduling with custom flags.
    AutoWith(QueueSchedFlags),
    /// Manual static mapping: `(region-1 device, region-2 device)` — the
    /// nine Figure 9 baselines.
    Manual(DeviceId, DeviceId),
}

/// Application configuration.
#[derive(Debug, Clone)]
pub struct FdmConfig {
    /// Grid dimensions of each region.
    pub dims: Dims,
    /// Memory layout variant (the paper's two code versions).
    pub layout: Layout,
    /// Number of velocity+stress iterations.
    pub iterations: usize,
    /// Receiver positions in region 1 (grid coordinates); the vertical
    /// velocity `vz` is sampled there after every iteration, producing the
    /// seismograms a real survey records.
    pub receivers: Vec<(usize, usize, usize)>,
    /// The elastic medium (homogeneous by default; layered models mirror
    /// DISFD's Earth-velocity-structure input).
    pub medium: crate::medium::Medium,
}

impl Default for FdmConfig {
    fn default() -> Self {
        // Large enough that a kernel fills the GPU (≥ 14 SMs × 8 workgroups
        // of 64 items); tiny grids are launch-overhead-bound and favour the
        // CPU on any layout, which is realistic but not the paper's regime.
        FdmConfig {
            dims: Dims::new(32, 32, 16),
            layout: Layout::ColumnMajor,
            iterations: 5,
            receivers: Vec::new(),
            medium: crate::medium::Medium::homogeneous(1.0, 1.0, 1.0),
        }
    }
}

/// Virtual time spent in one iteration's two epochs.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterTime {
    /// Velocity-phase makespan (including any profiling that iteration).
    pub velocity: SimDuration,
    /// Stress-phase makespan.
    pub stress: SimDuration,
}

impl IterTime {
    /// Total iteration time.
    pub fn total(&self) -> SimDuration {
        self.velocity + self.stress
    }
}

/// Field indices within a region's buffer array.
const VX: usize = 0;
const VY: usize = 1;
const VZ: usize = 2;
const SXX: usize = 3;
const SYY: usize = 4;
const SZZ: usize = 5;
const SXY: usize = 6;
const SXZ: usize = 7;
const SYZ: usize = 8;

struct Region {
    fields: [Buffer; 9],
    vel_kernels: Vec<Kernel>,
    stress_kernels: Vec<Kernel>,
    /// The source kernel (region 1 only) — its time argument is rebound
    /// every iteration.
    source: Option<Kernel>,
}

/// A recorded waveform: one `vz` sample per iteration at one receiver.
#[derive(Debug, Clone, Default)]
pub struct Seismogram {
    /// Receiver grid position.
    pub position: (usize, usize, usize),
    /// `vz` at the receiver after each completed iteration.
    pub samples: Vec<f64>,
}

impl Seismogram {
    /// Index of the first sample whose magnitude exceeds `threshold` — the
    /// wave's arrival time in iterations, if it arrived.
    pub fn arrival(&self, threshold: f64) -> Option<usize> {
        self.samples.iter().position(|v| v.abs() > threshold)
    }

    /// Peak absolute amplitude over the recording.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

/// The FDM-Seismology application: two independent wavefield regions on two
/// command queues.
pub struct FdmApp {
    queues: [SchedQueue; 2],
    regions: [Region; 2],
    params: Arc<Params>,
    cfg: FdmConfig,
    iter_times: Vec<IterTime>,
    seismograms: Vec<Seismogram>,
    ctx: MulticlContext,
    step: usize,
}

impl FdmApp {
    /// Build the application.
    pub fn new(ctx: &MulticlContext, cfg: FdmConfig, plan: &FdmPlan) -> ClResult<FdmApp> {
        let params = Arc::new(Params {
            dims: cfg.dims,
            layout: cfg.layout,
            medium: cfg.medium.clone(),
            ..Params::default()
        });
        let queues = match plan {
            FdmPlan::Auto => {
                let flags =
                    QueueSchedFlags::SCHED_AUTO_DYNAMIC | QueueSchedFlags::SCHED_KERNEL_EPOCH;
                [ctx.create_queue(flags)?, ctx.create_queue(flags)?]
            }
            FdmPlan::AutoWith(flags) => [ctx.create_queue(*flags)?, ctx.create_queue(*flags)?],
            FdmPlan::Manual(d1, d2) => [ctx.create_queue_on(*d1)?, ctx.create_queue_on(*d2)?],
        };
        // One program serves both regions (same kernel bodies and params).
        let p = Arc::clone(&params);
        let bodies: Vec<Arc<dyn KernelBody>> = vec![
            Arc::new(VelUpdate { comp: 0, kname: "vel_vx", p: p.clone() }),
            Arc::new(VelUpdate { comp: 1, kname: "vel_vy", p: p.clone() }),
            Arc::new(VelUpdate { comp: 2, kname: "vel_vz", p: p.clone() }),
            Arc::new(VelTaper { p: p.clone() }),
            Arc::new(StressNormal { comp: 0, kname: "str_sxx", p: p.clone() }),
            Arc::new(StressNormal { comp: 1, kname: "str_syy", p: p.clone() }),
            Arc::new(StressNormal { comp: 2, kname: "str_szz", p: p.clone() }),
            Arc::new(StressShear { axes: (0, 1), kname: "str_sxy", p: p.clone() }),
            Arc::new(StressShear { axes: (0, 2), kname: "str_sxz", p: p.clone() }),
            Arc::new(StressShear { axes: (1, 2), kname: "str_syz", p: p.clone() }),
            Arc::new(StressTaper { kname: "str_taper_n", p: p.clone() }),
            Arc::new(StressTaper { kname: "str_taper_s", p: p.clone() }),
            Arc::new(SourceInject { p: p.clone() }),
            Arc::new(FreeSurface { p: p.clone() }),
            Arc::new(Attenuate { p: p.clone() }),
            Arc::new(AbsorbStrip { side: 0, kname: "str_absorb_xlo", p: p.clone() }),
            Arc::new(AbsorbStrip { side: 1, kname: "str_absorb_xhi", p: p.clone() }),
            Arc::new(AbsorbStrip { side: 2, kname: "str_absorb_ylo", p: p.clone() }),
            Arc::new(AbsorbStrip { side: 3, kname: "str_absorb_yhi", p: p.clone() }),
        ];
        let program = ctx.create_program(bodies)?;
        let cells = cfg.dims.cells();

        let mut regions = Vec::with_capacity(2);
        for (ri, q) in queues.iter().enumerate() {
            let fields: [Buffer; 9] =
                std::array::from_fn(|_| ctx.create_buffer_of::<f64>(cells).expect("field buffer"));
            // Fields start at zero (quiescent medium); make them resident
            // on the queue's initial device like the real app's setup phase.
            for f in &fields {
                q.enqueue_write(f, &vec![0.0f64; cells])?;
            }

            // --- Velocity phase kernels ---
            let mut vel_kernels = Vec::new();
            for (comp, name) in [(VX, "vel_vx"), (VY, "vel_vy"), (VZ, "vel_vz")] {
                let k = program.create_kernel(name)?;
                for (a, s) in [SXX, SYY, SZZ, SXY, SXZ, SYZ].iter().enumerate() {
                    k.set_arg(a, ArgValue::Buffer(fields[*s].clone()))?;
                }
                k.set_arg(6, ArgValue::BufferMut(fields[comp].clone()))?;
                vel_kernels.push(k);
            }
            if ri == 1 {
                // Region 2's fourth velocity kernel (paper: 3 + 4 = 7).
                let k = program.create_kernel("vel_taper")?;
                k.set_arg(0, ArgValue::BufferMut(fields[VX].clone()))?;
                k.set_arg(1, ArgValue::BufferMut(fields[VY].clone()))?;
                k.set_arg(2, ArgValue::BufferMut(fields[VZ].clone()))?;
                vel_kernels.push(k);
            }

            // --- Stress phase kernels ---
            let mut stress_kernels = Vec::new();
            for (comp, name) in [(SXX, "str_sxx"), (SYY, "str_syy"), (SZZ, "str_szz")] {
                let k = program.create_kernel(name)?;
                k.set_arg(0, ArgValue::Buffer(fields[VX].clone()))?;
                k.set_arg(1, ArgValue::Buffer(fields[VY].clone()))?;
                k.set_arg(2, ArgValue::Buffer(fields[VZ].clone()))?;
                k.set_arg(3, ArgValue::BufferMut(fields[comp].clone()))?;
                let _ = comp;
                stress_kernels.push(k);
            }
            for (va, vb, s, name) in
                [(VX, VY, SXY, "str_sxy"), (VX, VZ, SXZ, "str_sxz"), (VY, VZ, SYZ, "str_syz")]
            {
                let k = program.create_kernel(name)?;
                k.set_arg(0, ArgValue::Buffer(fields[va].clone()))?;
                k.set_arg(1, ArgValue::Buffer(fields[vb].clone()))?;
                k.set_arg(2, ArgValue::BufferMut(fields[s].clone()))?;
                stress_kernels.push(k);
            }
            let taper_n = program.create_kernel("str_taper_n")?;
            taper_n.set_arg(0, ArgValue::BufferMut(fields[SXX].clone()))?;
            taper_n.set_arg(1, ArgValue::BufferMut(fields[SYY].clone()))?;
            taper_n.set_arg(2, ArgValue::BufferMut(fields[SZZ].clone()))?;
            stress_kernels.push(taper_n);
            let taper_s = program.create_kernel("str_taper_s")?;
            taper_s.set_arg(0, ArgValue::BufferMut(fields[SXY].clone()))?;
            taper_s.set_arg(1, ArgValue::BufferMut(fields[SXZ].clone()))?;
            taper_s.set_arg(2, ArgValue::BufferMut(fields[SYZ].clone()))?;
            stress_kernels.push(taper_s);
            let free = program.create_kernel("str_free_surface")?;
            free.set_arg(0, ArgValue::BufferMut(fields[SZZ].clone()))?;
            free.set_arg(1, ArgValue::BufferMut(fields[SXZ].clone()))?;
            free.set_arg(2, ArgValue::BufferMut(fields[SYZ].clone()))?;
            stress_kernels.push(free);
            let atten = program.create_kernel("str_atten")?;
            for (a, s) in [SXX, SYY, SZZ, SXY, SXZ, SYZ].iter().enumerate() {
                atten.set_arg(a, ArgValue::BufferMut(fields[*s].clone()))?;
            }
            stress_kernels.push(atten);

            let mut source = None;
            if ri == 0 {
                // Region 1 hosts the source (paper: 11 stress kernels).
                let k = program.create_kernel("str_source")?;
                k.set_arg(0, ArgValue::BufferMut(fields[SXX].clone()))?;
                k.set_arg(1, ArgValue::BufferMut(fields[SYY].clone()))?;
                k.set_arg(2, ArgValue::BufferMut(fields[SZZ].clone()))?;
                k.set_arg(3, ArgValue::F64(0.0))?;
                source = Some(k);
            } else {
                // Region 2 handles the outer absorbing strips (14 kernels).
                for name in ["str_absorb_xlo", "str_absorb_xhi", "str_absorb_ylo", "str_absorb_yhi"]
                {
                    let k = program.create_kernel(name)?;
                    for (a, s) in [SXX, SYY, SZZ, SXY, SXZ, SYZ].iter().enumerate() {
                        k.set_arg(a, ArgValue::BufferMut(fields[*s].clone()))?;
                    }
                    stress_kernels.push(k);
                }
            }
            regions.push(Region { fields, vel_kernels, stress_kernels, source });
        }
        let regions: [Region; 2] = regions.try_into().map_err(|_| unreachable!()).unwrap();
        let seismograms = cfg
            .receivers
            .iter()
            .map(|&position| Seismogram { position, samples: Vec::new() })
            .collect();
        Ok(FdmApp {
            queues,
            regions,
            params,
            cfg,
            iter_times: Vec::new(),
            seismograms,
            ctx: ctx.clone(),
            step: 0,
        })
    }

    /// Kernel launches in the velocity / stress phases (7 and 25 across the
    /// two regions, matching the paper).
    pub fn kernel_counts(&self) -> (usize, usize) {
        let vel = self.regions.iter().map(|r| r.vel_kernels.len()).sum();
        let stress = self
            .regions
            .iter()
            .map(|r| r.stress_kernels.len() + usize::from(r.source.is_some()))
            .sum();
        (vel, stress)
    }

    fn nd(&self) -> NdRange {
        NdRange::d1(self.cfg.dims.cells() as u64, 64)
    }

    /// Advance one iteration: a velocity epoch then a stress epoch, each
    /// synchronized across both queues; records the per-phase makespans.
    pub fn step(&mut self) -> ClResult<()> {
        let platform = self.ctx.platform().clone();
        let nd = self.nd();
        let t = self.step as f64 * self.params.dt;

        let t0 = platform.now();
        for (q, r) in self.queues.iter().zip(&self.regions) {
            for k in &r.vel_kernels {
                q.enqueue_ndrange(k, nd)?;
            }
        }
        for q in &self.queues {
            q.finish();
        }
        let t1 = platform.now();
        for (q, r) in self.queues.iter().zip(&self.regions) {
            for k in &r.stress_kernels {
                q.enqueue_ndrange(k, nd)?;
            }
            if let Some(src) = &r.source {
                src.set_arg(3, ArgValue::F64(t))?;
                q.enqueue_ndrange(src, NdRange::d1(1, 1))?;
            }
        }
        for q in &self.queues {
            q.finish();
        }
        let t2 = platform.now();
        self.iter_times.push(IterTime { velocity: t1 - t0, stress: t2 - t1 });
        // Sample the receivers (diagnostic data-plane read; a real survey
        // would batch these reads, so no virtual time is charged).
        if !self.seismograms.is_empty() {
            let vz = self.regions[0].fields[VZ].host_snapshot::<f64>();
            let d = self.cfg.dims;
            for s in &mut self.seismograms {
                let (i, j, k) = s.position;
                s.samples.push(vz[self.cfg.layout.idx(i, j, k, d)]);
            }
        }
        self.step += 1;
        Ok(())
    }

    /// Run the configured number of iterations.
    pub fn run(&mut self) -> ClResult<()> {
        for _ in 0..self.cfg.iterations {
            self.step()?;
        }
        Ok(())
    }

    /// Per-iteration phase times (Figure 10's series).
    pub fn iteration_times(&self) -> &[IterTime] {
        &self.iter_times
    }

    /// Mean iteration time over all iterations (Figure 9's metric).
    pub fn mean_iteration_time(&self) -> SimDuration {
        if self.iter_times.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.iter_times.iter().map(IterTime::total).sum();
        total / self.iter_times.len() as u64
    }

    /// Mean iteration time excluding the first (profiling-bearing)
    /// iteration — the steady-state metric.
    pub fn steady_iteration_time(&self) -> SimDuration {
        if self.iter_times.len() <= 1 {
            return self.mean_iteration_time();
        }
        let total: SimDuration = self.iter_times[1..].iter().map(IterTime::total).sum();
        total / (self.iter_times.len() - 1) as u64
    }

    /// Wavefield energy proxy: Σ(v²) + Σ(σ²) over both regions.
    pub fn energy(&self) -> f64 {
        self.regions
            .iter()
            .flat_map(|r| r.fields.iter())
            .map(|f| f.host_snapshot::<f64>().iter().map(|v| v * v).sum::<f64>())
            .sum()
    }

    /// True if every field value is finite.
    pub fn is_finite(&self) -> bool {
        self.regions
            .iter()
            .flat_map(|r| r.fields.iter())
            .all(|f| f.host_snapshot::<f64>().iter().all(|v| v.is_finite()))
    }

    /// Snapshot of one region's field (testing).
    pub fn field(&self, region: usize, field: usize) -> Vec<f64> {
        self.regions[region].fields[field].host_snapshot::<f64>()
    }

    /// The devices the two queues are currently mapped to.
    pub fn devices(&self) -> (DeviceId, DeviceId) {
        (self.queues[0].device(), self.queues[1].device())
    }

    /// The configuration.
    pub fn config(&self) -> &FdmConfig {
        &self.cfg
    }

    /// Recorded seismograms, one per configured receiver.
    pub fn seismograms(&self) -> &[Seismogram] {
        &self.seismograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::Platform;
    use multicl::{ContextSchedPolicy, ProfileCache, SchedOptions};

    fn ctx(tag: &str) -> (Platform, MulticlContext) {
        let platform = Platform::paper_node();
        let dir = std::env::temp_dir().join(format!("seismo-test-{tag}-{}", std::process::id()));
        let options =
            SchedOptions { profile_cache: ProfileCache::at(dir), ..SchedOptions::default() };
        let c =
            MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options).unwrap();
        (platform, c)
    }

    fn small(layout: Layout) -> FdmConfig {
        FdmConfig { dims: Dims::new(12, 12, 8), layout, iterations: 4, ..FdmConfig::default() }
    }

    #[test]
    fn kernel_counts_match_the_paper() {
        let (_p, c) = ctx("counts");
        let app = FdmApp::new(&c, small(Layout::ColumnMajor), &FdmPlan::Auto).unwrap();
        assert_eq!(app.kernel_counts(), (7, 25));
    }

    #[test]
    fn source_injects_energy_and_fields_stay_finite() {
        let (p, c) = ctx("energy");
        let cpu = p.node().cpu().unwrap();
        let mut app =
            FdmApp::new(&c, small(Layout::ColumnMajor), &FdmPlan::Manual(cpu, cpu)).unwrap();
        assert_eq!(app.energy(), 0.0);
        app.run().unwrap();
        assert!(app.is_finite());
        assert!(app.energy() > 0.0, "source must inject energy into region 1");
    }

    #[test]
    fn wave_propagates_away_from_the_source() {
        let (p, c) = ctx("wave");
        let cpu = p.node().cpu().unwrap();
        let cfg = FdmConfig {
            dims: Dims::new(12, 12, 8),
            layout: Layout::ColumnMajor,
            iterations: 12,
            ..FdmConfig::default()
        };
        let mut app = FdmApp::new(&c, cfg, &FdmPlan::Manual(cpu, cpu)).unwrap();
        app.run().unwrap();
        let vx = app.field(0, 0);
        let nonzero = vx.iter().filter(|v| v.abs() > 1e-12).count();
        assert!(nonzero > 50, "wavefield should spread: {nonzero} cells");
    }

    #[test]
    fn layouts_produce_identical_physics() {
        // The two ports store fields differently but compute identical
        // cell updates; region-1 vx must agree cell-by-cell.
        let (p, c) = ctx("layouts");
        let cpu = p.node().cpu().unwrap();
        let mut col =
            FdmApp::new(&c, small(Layout::ColumnMajor), &FdmPlan::Manual(cpu, cpu)).unwrap();
        col.run().unwrap();
        let mut row = FdmApp::new(&c, small(Layout::RowMajor), &FdmPlan::Manual(cpu, cpu)).unwrap();
        row.run().unwrap();
        let d = col.config().dims;
        let a = col.field(0, 0);
        let b = row.field(0, 0);
        for i in 0..d.nx {
            for j in 0..d.ny {
                for k in 0..d.nz {
                    let va = a[Layout::ColumnMajor.idx(i, j, k, d)];
                    let vb = b[Layout::RowMajor.idx(i, j, k, d)];
                    assert!((va - vb).abs() < 1e-14, "mismatch at ({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn column_major_autofit_lands_on_cpu_row_major_on_gpus() {
        // Each code version gets its own context: the kernel-profile cache
        // is keyed by kernel name, and the two layouts share names (they are
        // the same program source) — as separate application runs they never
        // share a runtime in the paper either.
        let full = |layout| FdmConfig { layout, iterations: 3, ..FdmConfig::default() };

        let (p, c) = ctx("fig9-col");
        let cpu = p.node().cpu().unwrap();
        let mut col = FdmApp::new(&c, full(Layout::ColumnMajor), &FdmPlan::Auto).unwrap();
        col.run().unwrap();
        let (d1, d2) = col.devices();
        assert_eq!((d1, d2), (cpu, cpu), "column-major prefers (CPU, CPU)");

        let (p2, c2) = ctx("fig9-row");
        let gpus = p2.node().gpus();
        let mut row = FdmApp::new(&c2, full(Layout::RowMajor), &FdmPlan::Auto).unwrap();
        row.run().unwrap();
        let (d1, d2) = row.devices();
        assert!(
            gpus.contains(&d1) && gpus.contains(&d2) && d1 != d2,
            "row-major prefers the two GPUs, got ({d1}, {d2})"
        );
    }

    #[test]
    fn seismograms_show_travel_time_ordering() {
        // Physics: the wave reaches a near receiver before a far one, and
        // both record nonzero amplitude eventually.
        let (p, c) = ctx("receivers");
        let cpu = p.node().cpu().unwrap();
        let dims = Dims::new(24, 24, 12);
        let center = (12, 12, 6);
        let near = (14, 12, 6); // 2 cells from the source
        let far = (21, 12, 6); // 9 cells from the source
        let cfg = FdmConfig {
            dims,
            layout: Layout::ColumnMajor,
            iterations: 30,
            receivers: vec![near, far],
            ..FdmConfig::default()
        };
        let mut app = FdmApp::new(&c, cfg, &FdmPlan::Manual(cpu, cpu)).unwrap();
        app.run().unwrap();
        let _ = center;
        let sg = app.seismograms();
        assert_eq!(sg.len(), 2);
        // First-arrival picking: threshold at 1% of each trace's own peak
        // (the Ricker source ramps smoothly, so absolute thresholds are
        // meaningless early in the ramp).
        let pick = |s: &Seismogram| s.arrival(0.01 * s.peak());
        assert!(sg.iter().all(|s| s.peak() > 0.0), "both receivers record energy");
        let near_arrival = pick(&sg[0]).expect("near receiver records the wave");
        let far_arrival = pick(&sg[1]).expect("far receiver records the wave");
        assert!(
            near_arrival < far_arrival,
            "travel time must increase with distance: near {near_arrival} vs far {far_arrival}"
        );
        assert!(sg[0].peak() > sg[1].peak(), "geometric spreading attenuates the far trace");
    }

    #[test]
    fn layered_medium_changes_the_wavefield_and_stays_stable() {
        let (p, c) = ctx("layered");
        let cpu = p.node().cpu().unwrap();
        let base = FdmConfig {
            dims: Dims::new(16, 16, 12),
            layout: Layout::ColumnMajor,
            iterations: 20,
            ..FdmConfig::default()
        };
        let mut homo = FdmApp::new(&c, base.clone(), &FdmPlan::Manual(cpu, cpu)).unwrap();
        homo.run().unwrap();
        let layered_cfg = FdmConfig { medium: crate::medium::Medium::two_layer(6), ..base };
        let mut layered = FdmApp::new(&c, layered_cfg, &FdmPlan::Manual(cpu, cpu)).unwrap();
        layered.run().unwrap();
        assert!(layered.is_finite(), "layered run must stay stable");
        assert!(layered.energy() > 0.0);
        // The interface reflects/refracts: the wavefields differ.
        let a = homo.field(0, 2);
        let b = layered.field(0, 2);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-12, "two-layer medium must alter the wavefield");
    }

    #[test]
    fn first_iteration_bears_the_profiling_overhead() {
        let (_p, c) = ctx("amortize");
        let mut app = FdmApp::new(&c, small(Layout::RowMajor), &FdmPlan::Auto).unwrap();
        app.run().unwrap();
        let times = app.iteration_times();
        assert!(
            times[0].total() > times[1].total() * 2,
            "iteration 0 should dominate: {:?}",
            times.iter().map(|t| t.total()).collect::<Vec<_>>()
        );
        // Steady state is stable.
        assert!(times[2].total().ratio(times[1].total()) < 1.5);
    }
}

//! Grid geometry and memory layouts.

/// 3-D grid dimensions of one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Extent along x.
    pub nx: usize,
    /// Extent along y.
    pub ny: usize,
    /// Extent along z.
    pub nz: usize,
}

impl Dims {
    /// Construct dimensions.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Dims {
        Dims { nx, ny, nz }
    }

    /// Total cell count.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Memory layout of the field arrays — the paper's two code versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Fortran order (x fastest): what the reference DISFD arrays use.
    /// Fast on the CPU, badly uncoalesced on GPUs when work-items stride y/z.
    ColumnMajor,
    /// C order (z fastest): the GPU-amenable port.
    RowMajor,
}

impl Layout {
    /// Linear index of `(i, j, k)` under this layout.
    #[inline]
    pub fn idx(self, i: usize, j: usize, k: usize, d: Dims) -> usize {
        match self {
            Layout::ColumnMajor => i + d.nx * (j + d.ny * k),
            Layout::RowMajor => k + d.nz * (j + d.ny * i),
        }
    }

    /// Effective GPU coalescing of the port (drives the cost model, §VI-B2:
    /// the column-major version "performs worst when all kernels run on a
    /// single GPU" and the row-major version is "more amenable for GPU
    /// execution").
    pub fn coalescing(self) -> f64 {
        match self {
            Layout::ColumnMajor => 0.2,
            Layout::RowMajor => 0.7,
        }
    }

    /// Short label used in reports ("col" / "row").
    pub fn label(self) -> &'static str {
        match self {
            Layout::ColumnMajor => "col",
            Layout::RowMajor => "row",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_are_bijections() {
        let d = Dims::new(4, 3, 5);
        for layout in [Layout::ColumnMajor, Layout::RowMajor] {
            let mut seen = vec![false; d.cells()];
            for i in 0..d.nx {
                for j in 0..d.ny {
                    for k in 0..d.nz {
                        let p = layout.idx(i, j, k, d);
                        assert!(!seen[p], "{layout:?} collides at ({i},{j},{k})");
                        seen[p] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn column_major_is_x_fastest() {
        let d = Dims::new(8, 8, 8);
        assert_eq!(Layout::ColumnMajor.idx(1, 0, 0, d), Layout::ColumnMajor.idx(0, 0, 0, d) + 1);
        assert_eq!(Layout::RowMajor.idx(0, 0, 1, d), Layout::RowMajor.idx(0, 0, 0, d) + 1);
    }

    #[test]
    fn row_major_is_more_coalesced_for_the_gpu_port() {
        assert!(Layout::RowMajor.coalescing() > Layout::ColumnMajor.coalescing());
    }
}

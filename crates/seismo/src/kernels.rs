//! The velocity and stress kernels of the FDM-Seismology port.
//!
//! All kernels share a [`Params`] block (geometry, layout, material,
//! timestep) fixed at program-creation time, and operate on the nine field
//! buffers of one region: velocities `vx, vy, vz` and stress components
//! `sxx, syy, szz, sxy, sxz, syz`.
//!
//! Kernel inventory (matching the paper's counts):
//!
//! * velocity phase — `vel_vx`, `vel_vy`, `vel_vz` (region 1: 3 kernels),
//!   plus `vel_taper` on region 2 (4 kernels; 7 total);
//! * stress phase — `str_sxx/syy/szz` (normal), `str_sxy/sxz/syz` (shear),
//!   `str_taper_n`, `str_taper_s`, `str_atten`, `str_free_surface`, and on
//!   region 1 the source injection `str_source` (11 kernels), on region 2
//!   four absorbing strips `str_absorb_{xlo,xhi,ylo,yhi}` (14 kernels;
//!   25 total).

use crate::grid::{Dims, Layout};
use crate::medium::Medium;
use crate::source::ricker;
use clrt::{KernelBody, KernelCtx};
use hwsim::{KernelCostSpec, KernelTraits};
use std::sync::Arc;

/// Fixed per-region parameters baked into the kernel bodies.
#[derive(Debug, Clone)]
pub struct Params {
    /// Region grid dimensions.
    pub dims: Dims,
    /// Memory layout of the port (column- vs row-major).
    pub layout: Layout,
    /// Timestep (s).
    pub dt: f64,
    /// Grid spacing (m).
    pub dx: f64,
    /// The elastic medium (homogeneous or depth-layered, as in the
    /// original DISFD "layered medium" model).
    pub medium: Medium,
    /// Sponge-taper width in cells (absorbing boundary).
    pub sponge: usize,
    /// Source peak frequency (Hz); source sits at the region center.
    pub freq: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            dims: Dims::new(24, 24, 12),
            layout: Layout::ColumnMajor,
            dt: 0.05,
            dx: 1.0,
            medium: Medium::homogeneous(1.0, 1.0, 1.0),
            sponge: 4,
            freq: 1.2,
        }
    }
}

impl Params {
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            coalescing: self.layout.coalescing(),
            branch_divergence: 0.08,
            vector_friendliness: 0.5,
            double_precision: true,
        }
    }

    /// Cerjan damping factor at `(i, j, k)`: 1.0 in the interior, smoothly
    /// below 1.0 within `sponge` cells of any boundary.
    fn taper(&self, i: usize, j: usize, k: usize) -> f64 {
        let d = self.dims;
        let edge = |p: usize, n: usize| -> usize { p.min(n - 1 - p) };
        let m = edge(i, d.nx).min(edge(j, d.ny)).min(edge(k, d.nz));
        if m >= self.sponge {
            1.0
        } else {
            let w = (self.sponge - m) as f64;
            (-0.015 * w * w).exp()
        }
    }
}

/// Clamped central difference along one axis of field `f`.
#[inline]
fn diff(f: &[f64], i: usize, j: usize, k: usize, axis: usize, p: &Params) -> f64 {
    let d = p.dims;
    let (lo, hi) = match axis {
        0 => (
            p.layout.idx(i.saturating_sub(1), j, k, d),
            p.layout.idx((i + 1).min(d.nx - 1), j, k, d),
        ),
        1 => (
            p.layout.idx(i, j.saturating_sub(1), k, d),
            p.layout.idx(i, (j + 1).min(d.ny - 1), k, d),
        ),
        _ => (
            p.layout.idx(i, j, k.saturating_sub(1), d),
            p.layout.idx(i, j, (k + 1).min(d.nz - 1), d),
        ),
    };
    (f[hi] - f[lo]) / (2.0 * p.dx)
}

macro_rules! for_each_cell {
    ($p:expr, $i:ident, $j:ident, $k:ident, $body:block) => {
        for $k in 0..$p.dims.nz {
            for $j in 0..$p.dims.ny {
                for $i in 0..$p.dims.nx {
                    $body
                }
            }
        }
    };
}

/// Velocity update for one component.
/// Args: 0..=5 = sxx, syy, szz, sxy, sxz, syz (read); 6 = v component (mut).
pub struct VelUpdate {
    /// 0 = vx, 1 = vy, 2 = vz.
    pub comp: usize,
    /// Kernel name (`vel_vx` …).
    pub kname: &'static str,
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for VelUpdate {
    fn name(&self) -> &str {
        self.kname
    }
    fn arity(&self) -> usize {
        7
    }
    fn cost(&self) -> KernelCostSpec {
        // Reads three stress fields at 2 neighbors each + the velocity,
        // writes the velocity: ~160 B and ~15 flops per cell.
        KernelCostSpec { flops_per_item: 15.0, bytes_per_item: 160.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = &self.p;
        let sxx = ctx.slice::<f64>(0);
        let syy = ctx.slice::<f64>(1);
        let szz = ctx.slice::<f64>(2);
        let sxy = ctx.slice::<f64>(3);
        let sxz = ctx.slice::<f64>(4);
        let syz = ctx.slice::<f64>(5);
        let v = ctx.slice_mut::<f64>(6);
        for_each_cell!(p, i, j, k, {
            let div = match self.comp {
                0 => diff(sxx, i, j, k, 0, p) + diff(sxy, i, j, k, 1, p) + diff(sxz, i, j, k, 2, p),
                1 => diff(sxy, i, j, k, 0, p) + diff(syy, i, j, k, 1, p) + diff(syz, i, j, k, 2, p),
                _ => diff(sxz, i, j, k, 0, p) + diff(syz, i, j, k, 1, p) + diff(szz, i, j, k, 2, p),
            };
            let scale = p.dt / p.medium.at_depth(k).rho;
            v[p.layout.idx(i, j, k, p.dims)] += scale * div;
        });
    }
}

/// Sponge taper on the three velocity fields (region 2's fourth velocity
/// kernel). Args: vx, vy, vz (mut).
pub struct VelTaper {
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for VelTaper {
    fn name(&self) -> &str {
        "vel_taper"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 6.0, bytes_per_item: 48.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = &self.p;
        let vx = ctx.slice_mut::<f64>(0);
        let vy = ctx.slice_mut::<f64>(1);
        let vz = ctx.slice_mut::<f64>(2);
        for_each_cell!(p, i, j, k, {
            let f = p.taper(i, j, k);
            if f < 1.0 {
                let idx = p.layout.idx(i, j, k, p.dims);
                vx[idx] *= f;
                vy[idx] *= f;
                vz[idx] *= f;
            }
        });
    }
}

/// Normal-stress update for one diagonal component.
/// Args: vx, vy, vz (read); 3 = stress component (mut).
pub struct StressNormal {
    /// 0 = sxx, 1 = syy, 2 = szz.
    pub comp: usize,
    /// Kernel name (`str_sxx` …).
    pub kname: &'static str,
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for StressNormal {
    fn name(&self) -> &str {
        self.kname
    }
    fn arity(&self) -> usize {
        4
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 14.0, bytes_per_item: 128.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = &self.p;
        let vx = ctx.slice::<f64>(0);
        let vy = ctx.slice::<f64>(1);
        let vz = ctx.slice::<f64>(2);
        let s = ctx.slice_mut::<f64>(3);
        for_each_cell!(p, i, j, k, {
            let exx = diff(vx, i, j, k, 0, p);
            let eyy = diff(vy, i, j, k, 1, p);
            let ezz = diff(vz, i, j, k, 2, p);
            let tr = exx + eyy + ezz;
            let own = [exx, eyy, ezz][self.comp];
            let m = p.medium.at_depth(k);
            s[p.layout.idx(i, j, k, p.dims)] += p.dt * (m.lam * tr + 2.0 * m.mu * own);
        });
    }
}

/// Shear-stress update for one off-diagonal component.
/// Args: first velocity, second velocity (read); 2 = stress (mut).
pub struct StressShear {
    /// Differentiation axes `(a, b)`: s_ab += dt·μ·(dv_a/db + dv_b/da).
    pub axes: (usize, usize),
    /// Kernel name (`str_sxy` …).
    pub kname: &'static str,
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for StressShear {
    fn name(&self) -> &str {
        self.kname
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 9.0, bytes_per_item: 96.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = &self.p;
        let va = ctx.slice::<f64>(0);
        let vb = ctx.slice::<f64>(1);
        let s = ctx.slice_mut::<f64>(2);
        let (a, b) = self.axes;
        for_each_cell!(p, i, j, k, {
            let e = diff(va, i, j, k, b, p) + diff(vb, i, j, k, a, p);
            s[p.layout.idx(i, j, k, p.dims)] += p.dt * p.medium.at_depth(k).mu * e;
        });
    }
}

/// Sponge taper over the three normal (or three shear) stress fields.
/// Args: three stress fields (mut).
pub struct StressTaper {
    /// `str_taper_n` or `str_taper_s`.
    pub kname: &'static str,
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for StressTaper {
    fn name(&self) -> &str {
        self.kname
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 6.0, bytes_per_item: 48.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = &self.p;
        let s0 = ctx.slice_mut::<f64>(0);
        let s1 = ctx.slice_mut::<f64>(1);
        let s2 = ctx.slice_mut::<f64>(2);
        for_each_cell!(p, i, j, k, {
            let f = p.taper(i, j, k);
            if f < 1.0 {
                let idx = p.layout.idx(i, j, k, p.dims);
                s0[idx] *= f;
                s1[idx] *= f;
                s2[idx] *= f;
            }
        });
    }
}

/// Explosive point source at the region center: adds a Ricker wavelet to
/// the three normal stresses. Args: sxx, syy, szz (mut); 3 = t (f64).
pub struct SourceInject {
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for SourceInject {
    fn name(&self) -> &str {
        "str_source"
    }
    fn arity(&self) -> usize {
        4
    }
    fn cost(&self) -> KernelCostSpec {
        // Touches one cell; the launch overhead dominates.
        KernelCostSpec {
            flops_per_item: 12.0,
            bytes_per_item: 48.0,
            traits: KernelTraits {
                coalescing: 1.0,
                branch_divergence: 0.0,
                vector_friendliness: 0.5,
                double_precision: true,
            },
        }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = &self.p;
        let t = ctx.f64(3);
        let amp = ricker(t, p.freq) * p.dt;
        let idx = p.layout.idx(p.dims.nx / 2, p.dims.ny / 2, p.dims.nz / 2, p.dims);
        ctx.slice_mut::<f64>(0)[idx] += amp;
        ctx.slice_mut::<f64>(1)[idx] += amp;
        ctx.slice_mut::<f64>(2)[idx] += amp;
    }
}

/// Free-surface condition at the top plane (k = 0): the z-normal tractions
/// vanish. Args: szz, sxz, syz (mut).
pub struct FreeSurface {
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for FreeSurface {
    fn name(&self) -> &str {
        "str_free_surface"
    }
    fn arity(&self) -> usize {
        3
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 1.0, bytes_per_item: 24.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = &self.p;
        let szz = ctx.slice_mut::<f64>(0);
        let sxz = ctx.slice_mut::<f64>(1);
        let syz = ctx.slice_mut::<f64>(2);
        for j in 0..p.dims.ny {
            for i in 0..p.dims.nx {
                let idx = p.layout.idx(i, j, 0, p.dims);
                szz[idx] = 0.0;
                sxz[idx] = 0.0;
                syz[idx] = 0.0;
            }
        }
    }
}

/// Intrinsic attenuation: uniform Q damping of all six stresses.
/// Args: six stress fields (mut).
pub struct Attenuate {
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for Attenuate {
    fn name(&self) -> &str {
        "str_atten"
    }
    fn arity(&self) -> usize {
        6
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 6.0, bytes_per_item: 96.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        const Q: f64 = 0.9995;
        for a in 0..6 {
            for v in ctx.slice_mut::<f64>(a).iter_mut() {
                *v *= Q;
            }
        }
    }
}

/// One absorbing side strip (region 2's extra boundary handling): extra
/// damping within the sponge on one lateral face.
/// Args: six stress fields (mut).
pub struct AbsorbStrip {
    /// 0 = x-low, 1 = x-high, 2 = y-low, 3 = y-high.
    pub side: usize,
    /// Kernel name (`str_absorb_xlo` …).
    pub kname: &'static str,
    /// Shared parameters.
    pub p: Arc<Params>,
}

impl KernelBody for AbsorbStrip {
    fn name(&self) -> &str {
        self.kname
    }
    fn arity(&self) -> usize {
        6
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec { flops_per_item: 3.0, bytes_per_item: 48.0, traits: self.p.traits() }
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let p = self.p.clone();
        let d = p.dims;
        let w = p.sponge.min(d.nx).min(d.ny);
        let damp = 0.985f64;
        let apply = |s: &mut [f64]| {
            for k in 0..d.nz {
                for t in 0..w {
                    match self.side {
                        0 | 1 => {
                            let i = if self.side == 0 { t } else { d.nx - 1 - t };
                            for j in 0..d.ny {
                                s[p.layout.idx(i, j, k, d)] *= damp;
                            }
                        }
                        _ => {
                            let j = if self.side == 2 { t } else { d.ny - 1 - t };
                            for i in 0..d.nx {
                                s[p.layout.idx(i, j, k, d)] *= damp;
                            }
                        }
                    }
                }
            }
        };
        for a in 0..6 {
            apply(ctx.slice_mut::<f64>(a));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taper_is_one_in_the_interior_and_below_one_at_edges() {
        let p = Params::default();
        let c = (p.dims.nx / 2, p.dims.ny / 2, p.dims.nz / 2);
        assert_eq!(p.taper(c.0, c.1, c.2), 1.0);
        assert!(p.taper(0, c.1, c.2) < 1.0);
        assert!(p.taper(0, 0, 0) < p.taper(1, c.1, c.2));
    }

    #[test]
    fn diff_of_linear_field_is_constant() {
        let p = Params { dims: Dims::new(8, 8, 8), ..Params::default() };
        let d = p.dims;
        let mut f = vec![0.0; d.cells()];
        for i in 0..d.nx {
            for j in 0..d.ny {
                for k in 0..d.nz {
                    f[p.layout.idx(i, j, k, d)] = 3.0 * i as f64;
                }
            }
        }
        // Interior central difference of 3x is exactly 3.
        let g = diff(&f, 4, 4, 4, 0, &p);
        assert!((g - 3.0).abs() < 1e-12);
        // Orthogonal axes see zero gradient.
        assert_eq!(diff(&f, 4, 4, 4, 1, &p), 0.0);
    }

    #[test]
    fn kernel_costs_reflect_layout_coalescing() {
        let col = Params { layout: Layout::ColumnMajor, ..Params::default() };
        let row = Params { layout: Layout::RowMajor, ..Params::default() };
        let kc = VelUpdate { comp: 0, kname: "vel_vx", p: Arc::new(col) };
        let kr = VelUpdate { comp: 0, kname: "vel_vx", p: Arc::new(row) };
        assert!(kc.cost().traits.coalescing < kr.cost().traits.coalescing);
    }
}

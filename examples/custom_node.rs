//! Scheduling beyond the paper's testbed: define a custom simulated node
//! and watch the scheduler adapt to its topology.
//!
//! Builds a node with one CPU and four GPUs of two different generations
//! (two fast, two slow) and runs eight EP queues — AUTO_FIT loads the fast
//! GPUs more heavily, and a homogeneous 4-GPU node splits evenly.
//!
//! Run with: `cargo run --release --example custom_node`

use hwsim::{DeviceType, NodeConfig, SimDuration};
use multicl::{ContextSchedPolicy, ProfileCache, SchedOptions};
use npb::{run_benchmark, Class, QueuePlan};

fn options(tag: &str) -> SchedOptions {
    SchedOptions {
        profile_cache: ProfileCache::at(
            std::env::temp_dir().join(format!("multicl-custom-{tag}-{}", std::process::id())),
        ),
        ..SchedOptions::default()
    }
}

/// One CPU + two fast GPUs + two half-speed GPUs.
fn mixed_node() -> NodeConfig {
    let mut node = NodeConfig::paper_node();
    node.name = "custom-mixed-4gpu".into();
    let fast = node.devices[1].clone();
    let mut slow = fast.clone();
    slow.peak_gflops /= 2.0;
    slow.peak_gflops_dp /= 2.0;
    slow.mem_bandwidth_gbs /= 2.0;
    slow.name = "budget GPU".into();
    for (i, mut g) in [fast.clone(), fast, slow.clone(), slow].into_iter().enumerate() {
        g.name = format!("{} #{i}", g.name);
        g.socket = Some(i % 2);
        if i >= node.devices.len() - 1 {
            node.devices.push(g);
            node.topology.device_links.push(hwsim::LinkSpec::new(15, 6.0));
        } else {
            node.devices[i + 1] = g;
        }
    }
    node
}

fn run_on(node: NodeConfig, tag: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("== node `{}` ==", node.name);
    for d in node.device_ids() {
        let s = node.spec(d);
        println!(
            "  {d}: {:<24} {:>7.0} SP GFLOP/s  {:>5.0} GB/s  ({})",
            s.name, s.peak_gflops, s.mem_bandwidth_gbs, s.device_type
        );
    }
    let platform = clrt::Platform::new(node);
    let r = run_benchmark(
        &platform,
        ContextSchedPolicy::AutoFit,
        options(tag),
        "EP",
        Class::C,
        8,
        &QueuePlan::Auto,
    )?;
    // Tally queues per device.
    let mut counts = std::collections::BTreeMap::new();
    for d in &r.final_devices {
        *counts.entry(*d).or_insert(0usize) += 1;
    }
    println!("EP.C with 8 queues, AUTO_FIT placement:");
    for (d, c) in counts {
        println!("  {d}: {c} queue(s)");
    }
    println!("verified: {}  time: {}\n", r.verified, SimDuration::from_nanos(r.time.as_nanos()));
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's node for reference.
    run_on(NodeConfig::paper_node(), "paper")?;
    // A heterogeneous 4-GPU node: fast GPUs should get more queues.
    run_on(mixed_node(), "mixed")?;
    // A homogeneous GPU-only node (no CPU device at all).
    let homo = NodeConfig::gpu_node(4);
    assert!(homo.devices.iter().all(|d| d.device_type == DeviceType::Gpu));
    run_on(homo, "homo")?;
    Ok(())
}

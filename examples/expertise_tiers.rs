//! The paper's three user-expertise tiers (§IV-B) side by side:
//!
//! * the **advanced** user ignores the scheduler and pins queues manually
//!   (`SCHED_OFF` via `create_queue_on`);
//! * the **intermediate** user knows the program's phases and uses explicit
//!   scheduler regions + workload hints
//!   (`SCHED_EXPLICIT_REGION`, `clSetCommandQueueSchedProperty`);
//! * the **novice** "may just use SCHED_AUTO_DYNAMIC and ignore the rest"
//!   — full automation at the cost of per-epoch scheduling.
//!
//! All three produce identical results; they differ in who does the
//! thinking and when the profiling cost is paid.
//!
//! Run with: `cargo run --release --example expertise_tiers`

use clrt::{ArgValue, KernelBody, KernelCtx, NdRange, Platform};
use hwsim::{KernelCostSpec, KernelTraits, SimTime};
use multicl::{ContextSchedPolicy, MulticlContext, ProfileCache, QueueSchedFlags, SchedOptions};
use std::sync::Arc;

/// An iterative stencil-ish kernel that favours the CPU.
struct Smooth;
impl KernelBody for Smooth {
    fn name(&self) -> &str {
        "smooth"
    }
    fn arity(&self) -> usize {
        1
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec::memory_bound(120.0).with_traits(KernelTraits {
            coalescing: 0.25,
            branch_divergence: 0.1,
            vector_friendliness: 0.5,
            double_precision: true,
        })
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let data = ctx.slice_mut::<f64>(0);
        for i in 1..data.len() - 1 {
            data[i] = 0.25 * data[i - 1] + 0.5 * data[i] + 0.25 * data[i + 1];
        }
    }
}

const N: usize = 1 << 15;
const ITERATIONS: usize = 12;

fn options(tag: &str) -> SchedOptions {
    SchedOptions {
        profile_cache: ProfileCache::at(
            std::env::temp_dir().join(format!("multicl-tiers-{tag}-{}", std::process::id())),
        ),
        ..SchedOptions::default()
    }
}

/// Run ITERATIONS epochs of the smoother on one queue created by `make`.
fn run_tier(
    label: &str,
    tag: &str,
    make: impl FnOnce(&MulticlContext) -> multicl::SchedQueue,
    region: bool,
) -> SimTime {
    let platform = Platform::paper_node();
    let ctx = MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options(tag))
        .expect("context");
    let program =
        ctx.create_program(vec![Arc::new(Smooth) as Arc<dyn KernelBody>]).expect("program");
    let kernel = program.create_kernel("smooth").expect("kernel");
    let buf = ctx.create_buffer_of::<f64>(N).expect("buffer");
    let queue = make(&ctx);
    queue.enqueue_write(&buf, &vec![1.0; N]).expect("write");
    kernel.set_arg(0, ArgValue::BufferMut(buf)).expect("arg");

    let start = platform.now();
    for iter in 0..ITERATIONS {
        // The intermediate user opens the scheduler region only around the
        // warmup iteration (clSetCommandQueueSchedProperty).
        if region && iter == 0 {
            queue.set_sched_property(true).expect("region start");
        }
        queue.enqueue_ndrange(&kernel, NdRange::d1(N as u64, 64)).expect("launch");
        queue.finish();
        if region && iter == 0 {
            queue.set_sched_property(false).expect("region stop");
        }
    }
    let elapsed = platform.now() - start;
    let stats = ctx.stats();
    println!(
        "{label:<14} device={} time={:<10} profiled epochs={} scheduler runs={}",
        queue.device(),
        elapsed.to_string(),
        stats.profiled_epochs,
        stats.sched_invocations
    );
    start + elapsed
}

fn main() {
    println!("one queue, {ITERATIONS} iterations of an uncoalesced smoother (CPU-friendly):\n");
    // Advanced: pins the queue to the CPU — zero scheduling machinery, but
    // the user had to *know* the CPU wins.
    run_tier(
        "advanced",
        "adv",
        |ctx| {
            let cpu = hwsim::NodeConfig::paper_node().cpu().unwrap();
            ctx.create_queue_on(cpu).expect("queue")
        },
        false,
    );
    // Intermediate: explicit region around the warmup iteration only.
    run_tier(
        "intermediate",
        "mid",
        |ctx| {
            ctx.create_queue(
                QueueSchedFlags::SCHED_AUTO_DYNAMIC | QueueSchedFlags::SCHED_EXPLICIT_REGION,
            )
            .expect("queue")
        },
        true,
    );
    // Novice: kernel-epoch automatic scheduling, no further thought.
    run_tier(
        "novice",
        "nov",
        |ctx| ctx.create_queue(QueueSchedFlags::SCHED_AUTO_DYNAMIC).expect("queue"),
        false,
    );
    println!(
        "\nAll three end on the CPU; the tiers trade user effort against\n\
         when (and whether) the profiling cost is paid."
    );
}

//! Run SNU-NPB-MD benchmarks under automatic scheduling.
//!
//! Usage: `cargo run --release --example npb_suite [BENCH] [CLASS] [QUEUES]`
//! e.g. `cargo run --release --example npb_suite EP C 4`
//! With no arguments, runs every benchmark at a small class with 4 queues.

use multicl::{ContextSchedPolicy, ProfileCache, SchedOptions};
use npb::{run_benchmark, suite, Class, QueuePlan};

fn options() -> SchedOptions {
    SchedOptions {
        profile_cache: ProfileCache::at(
            std::env::temp_dir().join(format!("multicl-example-{}", std::process::id())),
        ),
        ..SchedOptions::default()
    }
}

fn run_one(name: &str, class: Class, queues: usize) {
    let platform = clrt::Platform::paper_node();
    match run_benchmark(
        &platform,
        ContextSchedPolicy::AutoFit,
        options(),
        name,
        class,
        queues,
        &QueuePlan::Auto,
    ) {
        Ok(r) => {
            let devices: Vec<String> = r.final_devices.iter().map(|d| d.to_string()).collect();
            println!(
                "{:<6} time={:<12} verified={:<5} queues->[{}]  (profiled epochs: {})",
                r.label,
                r.time.to_string(),
                r.verified,
                devices.join(", "),
                r.stats.profiled_epochs
            );
        }
        Err(e) => println!("{name}.{class}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [name, class, queues] => {
            let class: Class = class.parse().expect("class is one of S,W,A,B,C,D");
            let queues: usize = queues.parse().expect("queue count");
            run_one(name, class, queues);
        }
        [] => {
            println!("SNU-NPB-MD under MultiCL AUTO_FIT (4 queues):\n");
            for b in suite() {
                // Smallest class each benchmark supports keeps this quick.
                let queues = if b.queue_rule.allows(4) { 4 } else { 1 };
                run_one(b.name, b.classes[0], queues);
            }
            println!("\n(arguments: BENCH CLASS QUEUES — e.g. `npb_suite EP C 4`)");
        }
        _ => eprintln!("usage: npb_suite [BENCH CLASS QUEUES]"),
    }
}

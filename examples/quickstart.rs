//! Quickstart: the MultiCL programming model in ~60 lines.
//!
//! Creates a context with the `AUTO_FIT` scheduler, two auto-scheduled
//! command queues, and two kernels with opposite device affinities — then
//! lets the runtime discover the right queue–device mapping by itself.
//!
//! Run with: `cargo run --release --example quickstart`

use clrt::{ArgValue, KernelBody, KernelCtx, NdRange, Platform};
use hwsim::{KernelCostSpec, KernelTraits};
use multicl::{ContextSchedPolicy, MulticlContext, QueueSchedFlags};
use std::sync::Arc;

/// A wide, compute-dense kernel: a GPU's favourite food.
struct ComputeHeavy;
impl KernelBody for ComputeHeavy {
    fn name(&self) -> &str {
        "compute_heavy"
    }
    fn arity(&self) -> usize {
        1
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec::compute_bound(10_000.0)
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        for v in ctx.slice_mut::<f64>(0).iter_mut() {
            *v = v.mul_add(1.0000001, 1.0);
        }
    }
}

/// A branchy, uncoalesced, memory-bound kernel: runs best on the CPU.
struct PointerChaser;
impl KernelBody for PointerChaser {
    fn name(&self) -> &str {
        "pointer_chaser"
    }
    fn arity(&self) -> usize {
        1
    }
    fn cost(&self) -> KernelCostSpec {
        KernelCostSpec::memory_bound(256.0).with_traits(KernelTraits {
            coalescing: 0.05,
            branch_divergence: 0.6,
            vector_friendliness: 0.2,
            double_precision: true,
        })
    }
    fn execute(&self, ctx: &mut KernelCtx<'_>) {
        let data = ctx.slice_mut::<f64>(0);
        let n = data.len();
        for i in 0..n {
            data[i] += data[(i * 7919) % n];
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated CLUSTER'15 testbed: 1 CPU + 2 GPUs.
    let platform = Platform::paper_node();
    println!("devices:");
    for d in platform.devices() {
        println!("  {}: {}", d.id, d.name());
    }

    // Context with the AUTO_FIT global scheduler (paper Table I).
    let ctx = MulticlContext::new(&platform, ContextSchedPolicy::AutoFit)?;
    let program = ctx.create_program(vec![
        Arc::new(ComputeHeavy) as Arc<dyn KernelBody>,
        Arc::new(PointerChaser),
    ])?;

    // Two auto-scheduled queues: the only MultiCL-specific code is the flag.
    let flags = QueueSchedFlags::SCHED_AUTO_DYNAMIC | QueueSchedFlags::SCHED_KERNEL_EPOCH;
    let q1 = ctx.create_queue(flags)?;
    let q2 = ctx.create_queue(flags)?;

    let n = 1 << 18;
    let a = ctx.create_buffer_of::<f64>(n)?;
    let b = ctx.create_buffer_of::<f64>(n)?;
    q1.enqueue_write(&a, &vec![1.0; n])?;
    q2.enqueue_write(&b, &vec![1.0; n])?;

    let kg = program.create_kernel("compute_heavy")?;
    kg.set_arg(0, ArgValue::BufferMut(a.clone()))?;
    q1.enqueue_ndrange(&kg, NdRange::d1(n as u64, 128))?;

    let kc = program.create_kernel("pointer_chaser")?;
    kc.set_arg(0, ArgValue::BufferMut(b.clone()))?;
    q2.enqueue_ndrange(&kc, NdRange::d1(n as u64, 64))?;

    // The first synchronization triggers profiling + mapping + execution.
    ctx.finish_all();

    println!("\nafter AUTO_FIT scheduling:");
    println!(
        "  compute-heavy queue  -> {} ({})",
        q1.device(),
        platform.node().spec(q1.device()).name
    );
    println!(
        "  pointer-chaser queue -> {} ({})",
        q2.device(),
        platform.node().spec(q2.device()).name
    );
    println!("\nvirtual time elapsed: {}", platform.now());
    let stats = ctx.stats();
    println!(
        "scheduler: {} invocation(s), {} profiled epoch(s), {} kernels issued",
        stats.sched_invocations, stats.profiled_epochs, stats.kernels_issued
    );
    Ok(())
}

//! The FDM-Seismology case study (paper §VI-B2): two wavefield regions on
//! two auto-scheduled queues, both memory layouts.
//!
//! Run with: `cargo run --release --example seismology [col|row] [ITERS]`

use multicl::{ContextSchedPolicy, MulticlContext, ProfileCache, SchedOptions};
use seismo::{FdmApp, FdmConfig, FdmPlan, Layout};

fn run_layout(layout: Layout, iterations: usize) -> Result<(), Box<dyn std::error::Error>> {
    let platform = clrt::Platform::paper_node();
    let options = SchedOptions {
        profile_cache: ProfileCache::at(
            std::env::temp_dir().join(format!("multicl-example-{}", std::process::id())),
        ),
        ..SchedOptions::default()
    };
    let ctx = MulticlContext::with_options(&platform, ContextSchedPolicy::AutoFit, options)?;
    let cfg = FdmConfig { layout, iterations, ..FdmConfig::default() };
    let mut app = FdmApp::new(&ctx, cfg, &FdmPlan::Auto)?;
    let (vel_kernels, stress_kernels) = app.kernel_counts();
    println!(
        "== {}-major version ({} velocity + {} stress kernels per iteration) ==",
        layout.label(),
        vel_kernels,
        stress_kernels
    );
    app.run()?;
    assert!(app.is_finite(), "wavefield must stay finite");
    let (d1, d2) = app.devices();
    println!("AUTO_FIT mapped regions to ({d1}, {d2})");
    println!("iteration timings (velocity + stress, virtual ms):");
    for (i, t) in app.iteration_times().iter().enumerate() {
        let marker = if i == 0 { "   <- includes dynamic profiling" } else { "" };
        println!(
            "  iter {i:>2}: {:>8.3} + {:>8.3} = {:>8.3} ms{marker}",
            t.velocity.as_millis_f64(),
            t.stress.as_millis_f64(),
            t.total().as_millis_f64()
        );
    }
    println!(
        "steady-state iteration: {:.3} ms; wavefield energy: {:.3e}\n",
        app.steady_iteration_time().as_millis_f64(),
        app.energy()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iterations = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    match args.first().map(String::as_str) {
        Some("col") => run_layout(Layout::ColumnMajor, iterations)?,
        Some("row") => run_layout(Layout::RowMajor, iterations)?,
        _ => {
            run_layout(Layout::ColumnMajor, iterations)?;
            run_layout(Layout::RowMajor, iterations)?;
        }
    }
    Ok(())
}
